//! The seeded chaos-fuzz harness.
//!
//! A chaos case is a pair of seeds: `script_seed` generates a random but
//! deterministic sequence of Tcl/Tk operations across two applications
//! (widget creation and destruction, configuration, packing, bindings
//! plus synthetic input, selection traffic, `send` between the apps,
//! timer advancement), and `fault_seed` generates an [`xsim::FaultPlan`]
//! injected into the shared display. Running a case must never panic:
//! faults surface as Tcl errors, `tkerror` reports, or clean application
//! teardown. Any failing pair replays deterministically, and [`shrink`]
//! reduces both the operation list and the fault plan to a minimal
//! reproducer.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tk::{TkApp, TkEnv};
use xsim::fault::FAULT_KIND_COUNT;
use xsim::{FaultPlan, XorShift};

/// Number of fault specs a generated plan carries.
pub const PLAN_FAULTS: usize = 8;
/// Request/event horizon for generated plans. Covers the two-app setup
/// (which consumes the first ~50 sequence numbers per client) plus the
/// scripted operations; specs that land inside the setup window simply
/// never fire, which keeps plan generation independent of setup size.
pub const PLAN_HORIZON: u64 = 400;
/// Operations per generated script.
pub const SCRIPT_OPS: usize = 60;

/// One operation of a chaos script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Evaluate a Tcl script in app 0 or 1 (errors are expected and counted).
    Tcl(usize, String),
    /// Move the pointer and click button 1.
    Click(i32, i32),
    /// Type a character at the focus window.
    Key(char),
    /// Advance virtual time by `ms` (fires timers).
    Advance(u64),
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Tcl(app, s) => write!(f, "app{app}: {s}"),
            Op::Click(x, y) => write!(f, "click {x},{y}"),
            Op::Key(c) => write!(f, "key {c:?}"),
            Op::Advance(ms) => write!(f, "advance {ms}ms"),
        }
    }
}

/// Generates the deterministic operation list for a script seed.
pub fn generate_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = XorShift::new(seed);
    let mut ops = Vec::with_capacity(n + 2);
    // Both apps get a selection handler proc up front so `selection`
    // operations have something to talk to.
    for app in 0..2 {
        ops.push(Op::Tcl(
            app,
            "proc give {offset max} {return chaos-value}".into(),
        ));
    }
    for _ in 0..n {
        let app = rng.below(2) as usize;
        let other = 1 - app;
        let w = rng.below(6); // widget name pool .w0 .. .w5
        let op = match rng.below(100) {
            0..=17 => {
                let kind = ["button", "message", "frame", "entry"][rng.below(4) as usize];
                Op::Tcl(app, format!("{kind} .w{w} -borderwidth {}", rng.below(4)))
            }
            18..=27 => Op::Tcl(app, format!("pack append . .w{w} {{top fillx}}")),
            28..=37 => Op::Tcl(app, format!(".w{w} configure -text t{}", rng.below(100))),
            38..=45 => Op::Tcl(app, format!("destroy .w{w}")),
            46..=53 => Op::Tcl(app, format!("bind .w{w} <ButtonPress-1> {{set hit{w} 1}}")),
            54..=61 => Op::Click(rng.range(1, 200) as i32, rng.range(1, 200) as i32),
            62..=65 => Op::Key((b'a' + rng.below(26) as u8) as char),
            66..=71 => Op::Advance(rng.range(1, 150)),
            72..=77 => match rng.below(3) {
                0 => Op::Tcl(app, format!("selection handle .w{w} give")),
                1 => Op::Tcl(app, format!("selection own .w{w}")),
                _ => Op::Tcl(app, "selection get".into()),
            },
            78..=87 => Op::Tcl(
                app,
                format!("send chaos{other} {{set remote {}}}", rng.below(100)),
            ),
            88..=91 => Op::Tcl(app, format!("after {} {{set fired 1}}", rng.range(1, 100))),
            92..=94 => Op::Tcl(app, "update".into()),
            95..=96 => Op::Tcl(app, format!("wm title . t{}", rng.below(100))),
            97..=98 => Op::Tcl(app, format!("focus .w{w}")),
            _ => Op::Tcl(app, "winfo children .".into()),
        };
        ops.push(op);
    }
    ops
}

/// Generates the deterministic fault plan for a fault seed. Two clients,
/// [`PLAN_FAULTS`] specs, [`PLAN_HORIZON`] horizon.
pub fn generate_plan(seed: u64) -> FaultPlan {
    FaultPlan::from_seed(seed, PLAN_FAULTS, 2, PLAN_HORIZON)
}

/// What a successful run reports.
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    /// Operations applied.
    pub ops: usize,
    /// Tcl-level errors observed (expected under faults).
    pub tcl_errors: u64,
    /// Faults injected, summed over both connections.
    pub faults_injected: u64,
    /// Per-kind fault splits, summed over both connections, indexed like
    /// `xsim::fault::FAULT_KIND_NAMES`.
    pub fault_counts: [u64; FAULT_KIND_COUNT],
    /// `send` timeouts, summed over all apps (`send_timeouts` counter).
    pub send_timeouts: u64,
    /// `send` retries after retryable X errors (`send_retries` counter).
    pub send_retries: u64,
    /// Duplicated requests dropped by the receiver dedup window
    /// (`send_dedup_drops` counter) — each one is a prevented double
    /// execution.
    pub send_dedup_drops: u64,
    /// Stale registry entries pruned (`registry_gc` counter).
    pub registry_gc: u64,
    /// Causal spans recorded across all apps (the tracer is always on).
    pub spans_recorded: u64,
    /// Aggregated span-tree shape across all apps, for well-formedness
    /// assertions (zero orphans, zero dangling-open spans at quiescence).
    pub span_shape: rtk_obs::SpanShape,
}

impl RunStats {
    /// Folds one app's fault-injection and send-RPC observability
    /// counters into the run totals.
    fn absorb_app(&mut self, app: &TkApp) {
        if let Some((injected, counts)) =
            app.conn().with_obs(|o| (o.faults_injected, o.fault_counts))
        {
            self.faults_injected += injected;
            for (slot, n) in self.fault_counts.iter_mut().zip(counts) {
                *slot += n;
            }
        }
        self.send_timeouts += app.obs().counter("send_timeouts");
        self.send_retries += app.obs().counter("send_retries");
        self.send_dedup_drops += app.obs().counter("send_dedup_drops");
        self.registry_gc += app.obs().counter("registry_gc");
        let spans = app.tracer().snapshot();
        self.spans_recorded += spans.len() as u64;
        self.span_shape.collect(&spans);
    }
}

/// A panic caught while running a case, or (in storm mode) a violation
/// of the exactly-once-or-clean-error invariant.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the offending operation (`None`: setup or teardown).
    pub op_index: Option<usize>,
    /// The panic payload, if it was a string.
    pub message: String,
    /// The server's fault report at the time of the panic (best effort —
    /// the environment died with the panic, so this is the plan as
    /// configured).
    pub plan: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "failure at op {}: {}", i, self.message),
            None => write!(f, "failure outside ops: {}", self.message),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with the default panic hook silenced (the chaos loop catches
/// panics; spraying backtraces over the progress output helps nobody).
/// The previous hook is restored afterwards.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(prev);
    r
}

fn apply(env: &TkEnv, apps: &[TkApp], op: &Op, stats: &mut RunStats) {
    match op {
        Op::Tcl(i, s) => {
            if apps[*i].eval(s).is_err() {
                stats.tcl_errors += 1;
            }
        }
        Op::Click(x, y) => {
            env.display().move_pointer(*x, *y);
            env.display().click(1);
            env.dispatch_all();
        }
        Op::Key(c) => {
            env.display().type_char(*c);
            env.dispatch_all();
        }
        Op::Advance(ms) => env.advance(*ms),
    }
}

/// Runs an explicit operation list against an explicit fault plan (the
/// shrinker's entry point). Returns the run's stats, or the caught panic.
pub fn run_ops(ops: &[Op], plan: &FaultPlan) -> Result<RunStats, Failure> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let env = TkEnv::new();
        let apps = [env.app("chaos0"), env.app("chaos1")];
        env.dispatch_all();
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
        let mut stats = RunStats::default();
        for (i, op) in ops.iter().enumerate() {
            let r = catch_unwind(AssertUnwindSafe(|| apply(&env, &apps, op, &mut stats)));
            if let Err(payload) = r {
                return Err(Failure {
                    op_index: Some(i),
                    message: panic_message(payload),
                    plan: plan.describe(),
                });
            }
            stats.ops = i + 1;
        }
        env.dispatch_all();
        check_span_integrity(&apps, plan)?;
        check_audit(&env, plan)?;
        for app in &apps {
            stats.absorb_app(app);
        }
        Ok(stats)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(Failure {
            op_index: None,
            message: panic_message(payload),
            plan: plan.describe(),
        }),
    }
}

/// The post-run resource reckoning: any server object still chargeable
/// to a dead client at quiescence — a window, GC, selection, interest
/// entry, queued event, or registry entry pointing at a vanished comm
/// window — fails the case exactly like a panic would.
fn check_audit(env: &TkEnv, plan: &FaultPlan) -> Result<(), Failure> {
    let leaks = env.display().with_server(|s| s.audit());
    if leaks.is_empty() {
        return Ok(());
    }
    Err(Failure {
        op_index: None,
        message: format!("resource audit: {}", leaks.join("; ")),
        plan: plan.describe(),
    })
}

/// Asserts that every app's causal span tree stayed well formed (no
/// orphaned parents, no dangling open spans at quiescence) — faults may
/// drop requests and kill connections, but they must never corrupt the
/// trace. A violation is a [`Failure`] like any other invariant break.
fn check_span_integrity(apps: &[TkApp], plan: &FaultPlan) -> Result<(), Failure> {
    for app in apps {
        if let Err(msg) = app.tracer().check_integrity() {
            return Err(Failure {
                op_index: None,
                message: format!("span integrity in {}: {msg}", app.name()),
                plan: plan.describe(),
            });
        }
    }
    Ok(())
}

/// Runs one seed pair end to end.
pub fn run_case(script_seed: u64, fault_seed: u64) -> Result<RunStats, Failure> {
    let ops = generate_ops(script_seed, SCRIPT_OPS);
    let plan = generate_plan(fault_seed);
    run_ops(&ops, &plan)
}

// ---------------------------------------------------------------------------
// Send-storm mode: N apps hammering each other with nested/concurrent sends
// under fault plans. The invariant is stronger than "no panic": every send
// either returns the correct result exactly once or a clean Tcl error —
// never a hang, panic, or double execution.
// ---------------------------------------------------------------------------

/// Applications in a send-storm case (`storm0` .. `storm{N-1}`).
pub const STORM_APPS: usize = 3;
/// Operations per generated storm script.
pub const STORM_OPS: usize = 40;
/// Request/event horizon for storm fault plans. Larger than the two-app
/// [`PLAN_HORIZON`]: three apps consume more setup sequence numbers, and
/// a timed-out send burns a liveness round trip every simulated 25 ms.
pub const STORM_HORIZON: u64 = 700;

/// One send issued by a storm script, recovered from the op text by
/// [`storm_sends`]. `target` is the app whose interpreter ultimately
/// evaluates the `incr` (the innermost hop of a nested send).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSend {
    /// Index into the op list.
    pub op_index: usize,
    /// App that issued the send.
    pub sender: usize,
    /// App whose interp runs `incr c_{key}`.
    pub target: usize,
    /// Unique per-op counter key (`c_{key}`, `ok_{key}`, `r_{key}`).
    pub key: usize,
}

/// Generates the deterministic operation list for a storm script seed.
///
/// Every send op is self-describing: app `i` evaluates
/// `set ok_K [catch {send ?-timeout T? stormJ {incr c_K}} r_K]`, so after
/// the run the invariant checker can read back, per send `K`: whether the
/// sender saw success (`ok_K` == 0), the result it saw (`r_K`), and how
/// many times the target actually evaluated the script (`c_K`, unset = 0).
/// Nested variants route through an intermediate app
/// (`send stormJ {send stormL {incr c_K}}`) to exercise reentrant
/// dispatch, including sends that land back on a waiting sender.
pub fn generate_storm_ops(seed: u64, n: usize, napps: usize) -> Vec<Op> {
    assert!(napps >= 2, "a storm needs at least two apps");
    let mut rng = XorShift::new(seed ^ 0x5707_0057);
    let mut ops = Vec::with_capacity(n);
    // Mostly short timeouts so lost requests burn little virtual time;
    // a few defaults keep the 5 s path honest.
    const TIMEOUTS: [u64; 4] = [150, 300, 600, 1200];
    for k in 0..n {
        let app = rng.below(napps as u64) as usize;
        let op = match rng.below(100) {
            0..=49 => {
                // Plain cross-app send.
                let target = (app + 1 + rng.below(napps as u64 - 1) as usize) % napps;
                let t = TIMEOUTS[rng.below(4) as usize];
                Op::Tcl(
                    app,
                    format!("set ok_{k} [catch {{send -timeout {t} storm{target} {{if {{[catch {{incr c_{k}}}]}} {{set c_{k} 1}}; set c_{k}}}}} r_{k}]"),
                )
            }
            50..=69 => {
                // Nested send: app -> mid -> target. `target` may equal
                // `app`, which sends back into an interpreter that is
                // itself blocked waiting on the outer reply.
                let mid = (app + 1 + rng.below(napps as u64 - 1) as usize) % napps;
                let target = (mid + 1 + rng.below(napps as u64 - 1) as usize) % napps;
                let t = TIMEOUTS[rng.below(4) as usize];
                Op::Tcl(
                    app,
                    format!(
                        "set ok_{k} [catch {{send -timeout {t} storm{mid} {{send storm{target} {{if {{[catch {{incr c_{k}}}]}} {{set c_{k} 1}}; set c_{k}}}}}}} r_{k}]"
                    ),
                )
            }
            70..=77 => {
                // Default-timeout send (the ~5 s simulated path).
                let target = (app + 1 + rng.below(napps as u64 - 1) as usize) % napps;
                Op::Tcl(
                    app,
                    format!("set ok_{k} [catch {{send storm{target} {{if {{[catch {{incr c_{k}}}]}} {{set c_{k} 1}}; set c_{k}}}}} r_{k}]"),
                )
            }
            78..=85 => Op::Advance(rng.range(1, 120)),
            86..=92 => Op::Tcl(app, format!("set local_{k} {}", rng.below(1000))),
            _ => Op::Tcl(app, "winfo interps".into()),
        };
        ops.push(op);
    }
    ops
}

/// Generates the deterministic fault plan for a storm fault seed:
/// `napps` clients, [`PLAN_FAULTS`] specs, [`STORM_HORIZON`] horizon.
pub fn generate_storm_plan(seed: u64, napps: usize) -> FaultPlan {
    FaultPlan::from_seed(seed, PLAN_FAULTS, napps as u32, STORM_HORIZON)
}

/// Recovers the send manifest from an op list by parsing the fixed op
/// shape emitted by [`generate_storm_ops`]. Parsing the text (rather than
/// carrying a side manifest) keeps [`shrink_storm`] trivial: dropping ops
/// drops their invariant checks with them.
pub fn storm_sends(ops: &[Op]) -> Vec<StormSend> {
    let mut sends = Vec::new();
    for (op_index, op) in ops.iter().enumerate() {
        let Op::Tcl(sender, script) = op else {
            continue;
        };
        let Some(rest) = script.strip_prefix("set ok_") else {
            continue;
        };
        let Some(key) = rest
            .split_whitespace()
            .next()
            .and_then(|k| k.parse::<usize>().ok())
        else {
            continue;
        };
        // The innermost hop — the app whose interp runs the `incr` — is
        // the last `storm<index>` occurrence in the script. The index can
        // run to several digits in fleet-sized storms, so take the whole
        // digit run, not just the first character.
        let Some(target) = script
            .match_indices("storm")
            .filter_map(|(i, _)| {
                let digits: String = script[i + 5..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                digits.parse::<usize>().ok()
            })
            .last()
        else {
            continue;
        };
        sends.push(StormSend {
            op_index,
            sender: *sender,
            target,
            key,
        });
    }
    sends
}

/// Reads a variable out of an app's interp, `None` if unset or the app's
/// eval path itself errors.
fn read_var(app: &TkApp, name: &str) -> Option<String> {
    app.eval(&format!("set {name}")).ok()
}

/// Runs an explicit storm op list against an explicit fault plan and
/// checks the exactly-once-or-clean-error invariant. Returns the caught
/// panic or invariant violation as a [`Failure`] (`op_index` points at
/// the offending send op for violations).
pub fn run_storm_ops(ops: &[Op], plan: &FaultPlan, napps: usize) -> Result<RunStats, Failure> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let env = TkEnv::new();
        let apps: Vec<TkApp> = (0..napps).map(|i| env.app(&format!("storm{i}"))).collect();
        env.dispatch_all();
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
        let mut stats = RunStats::default();
        for (i, op) in ops.iter().enumerate() {
            let r = catch_unwind(AssertUnwindSafe(|| apply(&env, &apps, op, &mut stats)));
            if let Err(payload) = r {
                return Err(Failure {
                    op_index: Some(i),
                    message: panic_message(payload),
                    plan: plan.describe(),
                });
            }
            stats.ops = i + 1;
        }
        env.dispatch_all();
        // Invariant sweep: every send evaluated at most once, and a send
        // that reported success evaluated exactly once with the correct
        // result. (`ok` == 1 with count 0 is a faulted request; with
        // count 1 it is a lost *reply* — both are clean-error outcomes.)
        for send in storm_sends(ops) {
            let violation = |message: String| Failure {
                op_index: Some(send.op_index),
                message,
                plan: plan.describe(),
            };
            let count: u64 = read_var(&apps[send.target], &format!("c_{}", send.key))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            if count > 1 {
                return Err(violation(format!(
                    "double execution: send {} evaluated {} times in storm{}",
                    send.key, count, send.target
                )));
            }
            if read_var(&apps[send.sender], &format!("ok_{}", send.key)).as_deref() == Some("0") {
                let r = read_var(&apps[send.sender], &format!("r_{}", send.key));
                if count != 1 || r.as_deref() != Some("1") {
                    return Err(violation(format!(
                        "send {} reported success but count={} result={:?}",
                        send.key, count, r
                    )));
                }
            }
        }
        check_span_integrity(&apps, plan)?;
        check_audit(&env, plan)?;
        for app in &apps {
            stats.absorb_app(app);
        }
        Ok(stats)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(Failure {
            op_index: None,
            message: panic_message(payload),
            plan: plan.describe(),
        }),
    }
}

/// Runs one storm seed pair end to end with `napps` applications
/// (`STORM_APPS` is the classic default; fleet storms pass more).
pub fn run_storm_case(
    script_seed: u64,
    fault_seed: u64,
    napps: usize,
) -> Result<RunStats, Failure> {
    let ops = generate_storm_ops(script_seed, STORM_OPS, napps);
    let plan = generate_storm_plan(fault_seed, napps);
    run_storm_ops(&ops, &plan, napps)
}

/// [`shrink`] against the storm runner (panics *and* invariant
/// violations count as failures).
pub fn shrink_storm(ops: &[Op], plan: &FaultPlan, napps: usize) -> (Vec<Op>, FaultPlan) {
    shrink_with(ops, plan, |ops, plan| {
        run_storm_ops(ops, plan, napps).is_err()
    })
}

// ---------------------------------------------------------------------------
// Byte-chaos mode: the same scripted two-app runs, but the faults attack
// the *wire encoding* — flipped bytes, truncated frames, injected garbage,
// split writes, stalled dispatch — instead of request semantics. The
// invariant is differential: a faulted run must either match the
// fault-free wire run byte for byte (Tcl outcomes and final tree), or
// show clean-death evidence (a checksum or watchdog kill) — and either
// way finish with a clean resource audit and intact span trees. Silent
// divergence is the bug class this mode exists to catch.
// ---------------------------------------------------------------------------

/// Byte-fault specs a generated bytes plan carries. Fewer than
/// [`PLAN_FAULTS`]: a single corrupt byte usually kills its connection,
/// so dense plans just re-kill a corpse.
pub const BYTES_FAULTS: usize = 4;
/// Encoded-frame horizon for bytes plans. Byte faults key on per-client
/// *frame* indices (every request and control frame counts), which run a
/// little past the request horizon of the same script.
pub const BYTES_HORIZON: u64 = 500;
/// Sync-watchdog deadline for byte-chaos runs, in wall-clock ms. Low
/// enough that a stalled dispatcher converts to a clean dead connection
/// inside the test budget, high enough (1000x a normal dispatch) that a
/// fault-free run never trips it.
pub const BYTES_WATCHDOG_MS: u64 = 1000;

/// Generates the deterministic byte-fault plan for a fault seed: two
/// clients, [`BYTES_FAULTS`] specs, [`BYTES_HORIZON`] frame horizon.
pub fn generate_bytes_plan(seed: u64) -> FaultPlan {
    FaultPlan::bytes_from_seed(seed, BYTES_FAULTS, 2, BYTES_HORIZON)
}

/// One byte-chaos run's comparable outcome: every Tcl op's result (ok or
/// error message, in order) plus a final `winfo children .` probe per
/// app. Clicks, keys, and timer advances leave their traces in the Tcl
/// results that follow them.
type BytesSignature = Vec<Result<String, String>>;

/// Runs one op list over the forced wire transport and returns the
/// comparable signature, the run stats, and the death evidence (checksum
/// kills + watchdog fires summed over both connections).
fn run_bytes_once(
    ops: &[Op],
    plan: &FaultPlan,
) -> Result<(BytesSignature, RunStats, u64), Failure> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        // Force the framed wire transport regardless of RTK_NO_WIRE: byte
        // faults only exist on the wire, and the differential oracle must
        // run the same transport as the faulted run.
        let display = xsim::Display::new();
        display.set_wire(true);
        display.set_wire_deadline(BYTES_WATCHDOG_MS);
        let env = TkEnv::with_display(display);
        let apps = [env.app("chaos0"), env.app("chaos1")];
        env.dispatch_all();
        env.display()
            .with_server(|s| s.install_fault_plan(plan.clone()));
        let mut stats = RunStats::default();
        let mut sig: BytesSignature = Vec::with_capacity(ops.len() + 2);
        for (i, op) in ops.iter().enumerate() {
            let fail = |payload| Failure {
                op_index: Some(i),
                message: panic_message(payload),
                plan: plan.describe(),
            };
            if let Op::Tcl(a, s) = op {
                match catch_unwind(AssertUnwindSafe(|| apps[*a].eval(s))) {
                    Ok(r) => {
                        if r.is_err() {
                            stats.tcl_errors += 1;
                        }
                        sig.push(r.map_err(|e| e.msg));
                    }
                    Err(payload) => return Err(fail(payload)),
                }
            } else if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| apply(&env, &apps, op, &mut stats)))
            {
                return Err(fail(payload));
            }
            stats.ops = i + 1;
        }
        env.dispatch_all();
        for app in &apps {
            sig.push(app.eval("winfo children .").map_err(|e| e.msg));
        }
        // Settle before the audit. Byte faults key on per-client
        // encoded-frame indices, and even an idle round of flush +
        // dispatch walks those counters (event polling ships control
        // frames), so a fault plotted past the scripted traffic fires
        // *during* settling. Spec firing is an exact index match, so once
        // a client's timeline has walked past the last plotted fault
        // nothing further can fire; settle until every app is dead or
        // past that point, then demand two quiet rounds so a late kill is
        // noticed by `dispatch_all` (which scrubs the dead app's registry
        // entry) before the audit takes the reckoning.
        let max_at = plan.specs().iter().map(|sp| sp.at).max().unwrap_or(0);
        let mut quiet = 0;
        for _ in 0..(BYTES_HORIZON + 200) {
            for app in &apps {
                app.conn().flush();
            }
            let progressed = env.dispatch_all();
            let past = apps
                .iter()
                .all(|app| !app.conn().alive() || app.conn().wire_frame_timeline() > max_at);
            quiet = if past && !progressed { quiet + 1 } else { 0 };
            if quiet >= 2 {
                break;
            }
        }
        check_span_integrity(&apps, plan)?;
        check_audit(&env, plan)?;
        let mut deaths = 0;
        for app in &apps {
            let w = app.conn().wire_stats();
            deaths += w.checksum_errors + w.watchdog_fires;
        }
        for app in &apps {
            stats.absorb_app(app);
        }
        Ok((sig, stats, deaths))
    }));
    match result {
        Ok(r) => r,
        Err(payload) => Err(Failure {
            op_index: None,
            message: panic_message(payload),
            plan: plan.describe(),
        }),
    }
}

/// Runs an explicit op list against an explicit byte-fault plan (the
/// shrinker's entry point) and checks the differential invariant: the
/// faulted run is byte-identical to the fault-free wire run, or every
/// divergence is backed by clean-death evidence. Both runs must pass the
/// span-integrity check and the post-run resource audit.
pub fn run_bytes_ops(ops: &[Op], plan: &FaultPlan) -> Result<RunStats, Failure> {
    let (oracle_sig, _, oracle_deaths) = run_bytes_once(ops, &FaultPlan::new(Vec::new()))?;
    if oracle_deaths > 0 {
        return Err(Failure {
            op_index: None,
            message: format!("fault-free oracle run lost a connection ({oracle_deaths} kills)"),
            plan: plan.describe(),
        });
    }
    let (sig, stats, deaths) = run_bytes_once(ops, plan)?;
    if sig != oracle_sig && deaths == 0 {
        let first = sig
            .iter()
            .zip(&oracle_sig)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| sig.len().min(oracle_sig.len()));
        return Err(Failure {
            op_index: Some(first.min(ops.len().saturating_sub(1))),
            message: format!(
                "silent divergence from the fault-free oracle at probe {first}: \
                 faulted {:?} vs oracle {:?}",
                sig.get(first),
                oracle_sig.get(first)
            ),
            plan: plan.describe(),
        });
    }
    Ok(stats)
}

/// Runs one byte-chaos seed pair end to end.
pub fn run_bytes_case(script_seed: u64, fault_seed: u64) -> Result<RunStats, Failure> {
    let ops = generate_ops(script_seed, SCRIPT_OPS);
    let plan = generate_bytes_plan(fault_seed);
    run_bytes_ops(&ops, &plan)
}

/// [`shrink`] against the byte-chaos runner (panics, silent divergence,
/// audit leaks, and span breaks all count as failures).
pub fn shrink_bytes(ops: &[Op], plan: &FaultPlan) -> (Vec<Op>, FaultPlan) {
    shrink_with(ops, plan, |ops, plan| run_bytes_ops(ops, plan).is_err())
}

/// Greedily shrinks a failing `(ops, plan)` to a minimal still-failing
/// reproducer: first delta-debugs the operation list (chunks halving down
/// to single ops), then drops fault specs one at a time. Deterministic,
/// so the same failing seed pair always shrinks to the same reproducer.
pub fn shrink(ops: &[Op], plan: &FaultPlan) -> (Vec<Op>, FaultPlan) {
    shrink_with(ops, plan, |ops, plan| run_ops(ops, plan).is_err())
}

/// [`shrink`] with an explicit failure predicate (separated for testing:
/// a synthetic predicate exercises the minimization logic without needing
/// a genuinely panicking toolkit).
pub fn shrink_with(
    ops: &[Op],
    plan: &FaultPlan,
    fails: impl Fn(&[Op], &FaultPlan) -> bool,
) -> (Vec<Op>, FaultPlan) {
    let mut ops = ops.to_vec();
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < ops.len() {
            let end = (start + chunk).min(ops.len());
            let mut candidate = ops.clone();
            candidate.drain(start..end);
            if fails(&candidate, plan) {
                ops = candidate;
                shrunk = true;
                // Re-test the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
    // Now minimize the plan against the minimized ops.
    let mut specs = plan.specs().to_vec();
    let mut i = 0;
    while i < specs.len() {
        let mut candidate = specs.clone();
        candidate.remove(i);
        if fails(&ops, &FaultPlan::new(candidate.clone())) {
            specs = candidate;
        } else {
            i += 1;
        }
    }
    (ops, FaultPlan::new(specs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_generation_is_deterministic() {
        assert_eq!(generate_ops(7, 40), generate_ops(7, 40));
        assert_ne!(generate_ops(7, 40), generate_ops(8, 40));
    }

    #[test]
    fn clean_case_runs_without_faults() {
        let stats = run_case(1, 0).expect("no panic");
        assert!(stats.ops > 0);
    }

    #[test]
    fn faulted_cases_do_not_panic() {
        for seed in 1..=5 {
            let r = run_case(seed, seed.wrapping_mul(0x9e37));
            assert!(r.is_ok(), "seed {seed}: {}", r.unwrap_err());
        }
    }

    #[test]
    fn shrink_minimizes_ops_and_plan_against_a_synthetic_failure() {
        let marker = Op::Tcl(0, "__chaos_marker__".into());
        let mut ops = generate_ops(3, 20);
        ops.insert(11, marker.clone());
        let plan = generate_plan(9);
        assert!(plan.specs().len() > 1);
        // "Fails" whenever the marker op is present; the plan is
        // irrelevant to the failure, so every spec should be dropped.
        let (min_ops, min_plan) = shrink_with(&ops, &plan, |ops, _| ops.contains(&marker));
        assert_eq!(min_ops, vec![marker]);
        assert!(min_plan.specs().is_empty());
    }

    #[test]
    fn plan_generation_is_deterministic() {
        assert_eq!(generate_plan(42).describe(), generate_plan(42).describe());
    }

    #[test]
    fn storm_op_generation_is_deterministic_and_multi_app() {
        let ops = generate_storm_ops(11, STORM_OPS, STORM_APPS);
        assert_eq!(ops, generate_storm_ops(11, STORM_OPS, STORM_APPS));
        assert_ne!(ops, generate_storm_ops(12, STORM_OPS, STORM_APPS));
        let sends = storm_sends(&ops);
        assert!(!sends.is_empty());
        assert!(sends
            .iter()
            .all(|s| s.sender < STORM_APPS && s.target < STORM_APPS));
    }

    #[test]
    fn storm_sends_parses_plain_and_nested_ops() {
        let ops = vec![
            Op::Tcl(
                0,
                "set ok_3 [catch {send -timeout 150 storm2 {if {[catch {incr c_3}]} {set c_3 1}; set c_3}} r_3]".into(),
            ),
            Op::Tcl(
                1,
                "set ok_7 [catch {send storm0 {send storm2 {if {[catch {incr c_7}]} {set c_7 1}; set c_7}}} r_7]".into(),
            ),
            Op::Advance(5),
            Op::Tcl(2, "winfo interps".into()),
        ];
        assert_eq!(
            storm_sends(&ops),
            vec![
                StormSend {
                    op_index: 0,
                    sender: 0,
                    target: 2,
                    key: 3
                },
                StormSend {
                    op_index: 1,
                    sender: 1,
                    target: 2,
                    key: 7
                },
            ]
        );
    }

    #[test]
    fn storm_sends_parses_multi_digit_app_indices() {
        let ops = vec![Op::Tcl(
            12,
            "set ok_4 [catch {send -timeout 150 storm37 {if {[catch {incr c_4}]} {set c_4 1}; set c_4}} r_4]"
                .into(),
        )];
        assert_eq!(
            storm_sends(&ops),
            vec![StormSend {
                op_index: 0,
                sender: 12,
                target: 37,
                key: 4
            }]
        );
    }

    #[test]
    fn faulted_fleet_storm_holds_the_invariant() {
        with_quiet_panics(|| {
            let r = run_storm_case(5, 0x0517_eed5, 16);
            assert!(r.is_ok(), "{}", r.unwrap_err());
        });
    }

    #[test]
    fn clean_storm_case_satisfies_the_invariant() {
        let ops = generate_storm_ops(1, STORM_OPS, STORM_APPS);
        let stats =
            run_storm_ops(&ops, &FaultPlan::new(Vec::new()), STORM_APPS).expect("clean storm run");
        assert!(stats.ops > 0);
        assert_eq!(stats.faults_injected, 0);
        assert_eq!(stats.send_timeouts, 0);
        assert_eq!(stats.send_dedup_drops, 0);
    }

    #[test]
    fn faulted_storm_cases_hold_the_invariant() {
        with_quiet_panics(|| {
            for seed in 1..=4u64 {
                let fault_seed = seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                let r = run_storm_case(seed, fault_seed, STORM_APPS);
                assert!(r.is_ok(), "seed {seed}: {}", r.unwrap_err());
            }
        });
    }

    #[test]
    fn bytes_plan_generation_is_deterministic_and_byte_only() {
        let plan = generate_bytes_plan(21);
        assert_eq!(plan.describe(), generate_bytes_plan(21).describe());
        assert_eq!(plan.specs().len(), BYTES_FAULTS);
        assert!(plan.specs().iter().all(|s| s.action.is_byte_fault()));
    }

    #[test]
    fn clean_bytes_case_matches_its_own_oracle() {
        let ops = generate_ops(1, 20);
        let stats = run_bytes_ops(&ops, &FaultPlan::new(Vec::new())).expect("clean bytes run");
        assert!(stats.ops > 0);
        assert_eq!(stats.faults_injected, 0);
    }

    #[test]
    fn byte_faulted_cases_hold_the_differential_invariant() {
        with_quiet_panics(|| {
            for seed in 1..=4u64 {
                let fault_seed = seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                let r = run_bytes_case(seed, fault_seed);
                assert!(r.is_ok(), "seed {seed}: {}", r.unwrap_err());
            }
        });
    }

    #[test]
    fn storm_runner_flags_a_double_execution() {
        // Synthetic violation: the counter is bumped twice behind the
        // checker's back, so the send op's count lands at 3.
        let ops = vec![
            Op::Tcl(1, "set c_0 2".into()),
            Op::Tcl(
                0,
                "set ok_0 [catch {send -timeout 150 storm1 {if {[catch {incr c_0}]} {set c_0 1}; set c_0}} r_0]".into(),
            ),
        ];
        let err = run_storm_ops(&ops, &FaultPlan::new(Vec::new()), STORM_APPS)
            .expect_err("double execution must be flagged");
        assert_eq!(err.op_index, Some(1));
        assert!(err.message.contains("double execution"), "{}", err.message);
    }

    #[test]
    fn storm_runner_flags_a_wrong_success_result() {
        // A send that "succeeded" but whose counter was then unset is a
        // success-with-wrong-evidence violation.
        let ops = vec![
            Op::Tcl(
                0,
                "set ok_0 [catch {send -timeout 150 storm1 {if {[catch {incr c_0}]} {set c_0 1}; set c_0}} r_0]".into(),
            ),
            Op::Tcl(1, "unset c_0".into()),
        ];
        let err = run_storm_ops(&ops, &FaultPlan::new(Vec::new()), STORM_APPS)
            .expect_err("success without evidence must be flagged");
        assert!(err.message.contains("reported success"), "{}", err.message);
    }
}
