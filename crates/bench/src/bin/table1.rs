//! Reproduces **Table I** of the paper: "A comparison between Tk and
//! Xt/Motif based on lines of source code ... for selected modules."
//!
//! The Xt/Motif and original-Tk columns are the numbers published in the
//! paper (they are data, not something we can re-measure). Our column is
//! measured from this repository with the same module mapping the paper
//! used: the intrinsics, the Tcl interpreter, the packer, and the three
//! widget files — including the fact that "in Tk a single file implements
//! labels, buttons, check buttons, and radio buttons", which this
//! reproduction preserves.
//!
//! Run with: `cargo run -p tk-bench --bin table1`

use std::path::Path;

use tk_bench::count_loc_files;

struct Row {
    name: &'static str,
    xt_motif: Option<u32>,
    tk_1991: u32,
    ours_code: usize,
    ours_tests: usize,
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let tcl_src = root.join("crates/tcl/src");
    let tk_src = root.join("crates/tk/src");
    let xsim_src = root.join("crates/xsim/src");

    // Module mapping (paper row -> our files).
    let intrinsics = count_loc_files(
        &tk_src,
        &[
            "app.rs",
            "bind.rs",
            "cache.rs",
            "cmds.rs",
            "config.rs",
            "draw.rs",
            "lib.rs",
            "optiondb.rs",
            "selection.rs",
            "send.rs",
            "window.rs",
            "widget/mod.rs",
        ],
    );
    let tcl = count_loc_files(
        &tcl_src,
        &[
            "commands/control.rs",
            "commands/info_cmd.rs",
            "commands/list_cmds.rs",
            "commands/misc.rs",
            "commands/mod.rs",
            "commands/string_cmds.rs",
            "commands/var.rs",
            "error.rs",
            "expr.rs",
            "interp.rs",
            "lib.rs",
            "list.rs",
            "parser.rs",
            "strutil.rs",
        ],
    );
    let packer = count_loc_files(&tk_src, &["pack.rs"]);
    let buttons = count_loc_files(&tk_src, &["widget/button.rs"]);
    let scrollbar = count_loc_files(&tk_src, &["widget/scrollbar.rs"]);
    let listbox = count_loc_files(&tk_src, &["widget/listbox.rs"]);
    let other_widgets = count_loc_files(
        &tk_src,
        &[
            "widget/entry.rs",
            "widget/frame.rs",
            "widget/menu.rs",
            "widget/message.rs",
            "widget/scale.rs",
        ],
    );
    let xserver = count_loc_files(
        &xsim_src,
        &[
            "atom.rs",
            "color.rs",
            "connection.rs",
            "cursor.rs",
            "event.rs",
            "font.rs",
            "gc.rs",
            "ids.rs",
            "lib.rs",
            "render.rs",
            "server.rs",
            "window.rs",
        ],
    );

    let rows = [
        Row {
            name: "Intrinsics",
            xt_motif: Some(24900),
            tk_1991: 15100,
            ours_code: intrinsics.0,
            ours_tests: intrinsics.1,
        },
        Row {
            name: "Tcl",
            xt_motif: None,
            tk_1991: 9300,
            ours_code: tcl.0,
            ours_tests: tcl.1,
        },
        Row {
            name: "Geometry Manager",
            xt_motif: Some(2100),
            tk_1991: 1000,
            ours_code: packer.0,
            ours_tests: packer.1,
        },
        Row {
            name: "Buttons",
            xt_motif: Some(6300),
            tk_1991: 1000,
            ours_code: buttons.0,
            ours_tests: buttons.1,
        },
        Row {
            name: "Scrollbar",
            xt_motif: Some(3000),
            tk_1991: 1200,
            ours_code: scrollbar.0,
            ours_tests: scrollbar.1,
        },
        Row {
            name: "Listbox",
            xt_motif: Some(6400),
            tk_1991: 1600,
            ours_code: listbox.0,
            ours_tests: listbox.1,
        },
    ];

    println!("Table I — source lines, paper vs this reproduction");
    println!("(Xt/Motif and Tk-1991 columns are the paper's published numbers;");
    println!(" the Rust columns are measured from this repository right now.)\n");
    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>11}",
        "", "Xt/Motif", "Tk 1991", "Rust code", "Rust tests"
    );
    let mut totals = (0u32, 0u32, 0usize, 0usize);
    for r in &rows {
        println!(
            "{:<18} {:>9} {:>9} {:>10} {:>11}",
            r.name,
            r.xt_motif.map(|v| v.to_string()).unwrap_or_default(),
            r.tk_1991,
            r.ours_code,
            r.ours_tests
        );
        totals.0 += r.xt_motif.unwrap_or(0);
        totals.1 += r.tk_1991;
        totals.2 += r.ours_code;
        totals.3 += r.ours_tests;
    }
    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>11}",
        "Total", totals.0, totals.1, totals.2, totals.3
    );

    println!("\nModules the paper's Tk did not need but this reproduction builds:");
    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>11}",
        "X server (sim)", "-", "-", xserver.0, xserver.1
    );
    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>11}",
        "Other widgets", "-", "-", other_widgets.0, other_widgets.1
    );

    // The paper's second dimension — compiled bytes — can only be
    // approximated per crate (rlib sizes from a release build), since Rust
    // compiles per crate, not per module.
    println!("\nCompiled sizes (release rlibs, when built with --release):");
    for krate in ["tcl", "tk", "xsim"] {
        let path = root.join(format!("target/release/lib{krate}.rlib"));
        match std::fs::metadata(&path) {
            Ok(m) => println!("  lib{krate}.rlib: {} bytes", m.len()),
            Err(_) => println!("  lib{krate}.rlib: (run `cargo build --release` first)"),
        }
    }

    println!("\nShape check (the paper's claims, recomputed for the Rust columns):");
    let ratio = |a: usize, b: u32| b as f64 / a as f64;
    println!(
        "  paper: Tk widgets 2-5x smaller than Motif; Rust buttons vs Motif: {:.1}x,\n\
         \u{20}        scrollbar: {:.1}x, listbox: {:.1}x smaller",
        ratio(rows[3].ours_code, 6300),
        ratio(rows[4].ours_code, 3000),
        ratio(rows[5].ours_code, 6400),
    );
}
