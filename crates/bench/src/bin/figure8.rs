//! Reproduces **Figure 8** of the paper: "An example of geometry
//! management" — four windows with requested sizes packed all-in-a-column
//! into a parent that is too small, so "Window C ended up with less width
//! than requested and window D received less height than requested".
//!
//! Prints the requested sizes (Figure 8a), the parent size (8b), and the
//! resulting layout (8c), then verifies the paper's two observations.
//!
//! Run with: `cargo run -p tk-bench --bin figure8`

use tk_bench::env_with_apps;

fn main() {
    let (env, apps) = env_with_apps(&["figure8"]);
    let app = &apps[0];

    // (a) Requested sizes of four windows.
    let requested: &[(&str, u32, u32)] = &[
        (".p.a", 60, 35),
        (".p.b", 90, 30),
        (".p.c", 130, 25),
        (".p.d", 60, 60),
    ];
    // (b) The parent they must fit into.
    let (parent_w, parent_h) = (110u32, 110u32);

    app.eval(&format!("frame .p -geometry {parent_w}x{parent_h}"))
        .unwrap();
    app.eval("pack append . .p {top}").unwrap();
    for (path, w, h) in requested {
        app.eval(&format!("frame {path} -geometry {w}x{h}"))
            .unwrap();
    }
    // (c) An "all-in-a-column" geometry manager arranges them top down.
    app.eval("pack append .p .p.a {top} .p.b {top} .p.c {top} .p.d {top}")
        .unwrap();
    app.update();
    // Pin the parent at its Figure 8b size (it is not a toplevel, so the
    // packer's propagation request for it lands on no manager).
    let p = app.window(".p").unwrap();
    app.conn()
        .configure_window(p.xid, None, None, Some(parent_w), Some(parent_h), None);
    app.update();
    tk::pack::relayout(app, ".p");
    app.update();

    println!("Figure 8 — geometry management\n");
    println!("(a) requested sizes:");
    for (path, w, h) in requested {
        println!("    {path}: {w}x{h}");
    }
    println!("(b) parent size: {parent_w}x{parent_h}");
    println!("(c) packed layout (all-in-a-column):");
    println!(
        "    {:<6} {:>9} {:>9} {:>12}",
        "window", "position", "size", "requested"
    );
    for (path, w, h) in requested {
        let rec = app.window(path).unwrap();
        println!(
            "    {:<6} {:>9} {:>9} {:>12}",
            &path[3..],
            format!("+{}+{}", rec.x.get(), rec.y.get()),
            format!("{}x{}", rec.width.get(), rec.height.get()),
            format!("{w}x{h}")
        );
    }

    let c = app.window(".p.c").unwrap();
    let d = app.window(".p.d").unwrap();
    assert!(
        c.width.get() < 130,
        "C must receive less width than requested"
    );
    assert!(
        d.height.get() < 60,
        "D must receive less height than requested"
    );
    println!(
        "\nPaper's observations hold: C got {} < 130 wide, D got {} < 60 high.",
        c.width.get(),
        d.height.get()
    );
    println!("\nScreen:\n{}", env.display().ascii_dump());
}
