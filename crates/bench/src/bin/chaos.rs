//! Seeded chaos-fuzz driver for the whole Tcl/Tk surface.
//!
//! Usage:
//!   chaos --seeds N [--base-seed S]     run N fresh (script, fault) pairs
//!   chaos --replay SCRIPT FAULT         replay one pair and shrink on failure
//!   chaos --corpus FILE [--seeds N]     run checked-in pairs first, then N fresh
//!   chaos --storm [--apps N] ...        same flags, send-storm mode (N apps)
//!   chaos --bytes ...                   same flags, byte-level wire-fault mode
//!
//! A corpus file holds one `script_seed fault_seed [apps]` entry per line
//! (`#` comments allowed). The optional third column is the storm's app
//! count; absent, the `--apps` value (default 3) applies, which keeps
//! classic two-column pairs replayable unchanged. Exit status is non-zero
//! iff any case fails; the failing pair, its fault plan, and a greedily
//! shrunk reproducer are printed so the pair can be checked in as a
//! regression test.
//!
//! `--storm` swaps the generic two-app fuzz for the send-storm harness:
//! N applications exchanging seeded nested/concurrent `send`s under
//! the same fault plans, checked against the exactly-once-or-clean-error
//! invariant (a send that "succeeds" must have evaluated exactly once
//! with the correct result; no send may ever evaluate twice).
//!
//! `--bytes` swaps the request-level fault plans for byte-level wire
//! faults (corrupted bytes, truncated frames, injected garbage, split
//! writes, stalled dispatch) and checks each run differentially against
//! a fault-free wire run: byte-identical outcomes or clean-death
//! evidence, with an intact span tree and a clean resource audit either
//! way.

use std::process::ExitCode;

use tk_bench::chaos::{
    generate_bytes_plan, generate_ops, generate_plan, generate_storm_ops, generate_storm_plan,
    run_bytes_case, run_bytes_ops, run_case, run_ops, run_storm_case, run_storm_ops, shrink,
    shrink_bytes, shrink_storm, with_quiet_panics, RunStats, SCRIPT_OPS, STORM_APPS, STORM_OPS,
};
use xsim::fault::FAULT_KIND_NAMES;

struct Totals {
    cases: u64,
    tcl_errors: u64,
    faults_injected: u64,
    fault_counts: [u64; FAULT_KIND_NAMES.len()],
    send_timeouts: u64,
    send_retries: u64,
    send_dedup_drops: u64,
    registry_gc: u64,
}

impl Totals {
    fn new() -> Totals {
        Totals {
            cases: 0,
            tcl_errors: 0,
            faults_injected: 0,
            fault_counts: [0; FAULT_KIND_NAMES.len()],
            send_timeouts: 0,
            send_retries: 0,
            send_dedup_drops: 0,
            registry_gc: 0,
        }
    }

    fn absorb(&mut self, stats: &RunStats) {
        self.cases += 1;
        self.tcl_errors += stats.tcl_errors;
        self.faults_injected += stats.faults_injected;
        for (slot, n) in self.fault_counts.iter_mut().zip(stats.fault_counts) {
            *slot += n;
        }
        self.send_timeouts += stats.send_timeouts;
        self.send_retries += stats.send_retries;
        self.send_dedup_drops += stats.send_dedup_drops;
        self.registry_gc += stats.registry_gc;
    }

    fn print(&self) {
        println!(
            "{} cases, {} tcl errors, {} faults injected",
            self.cases, self.tcl_errors, self.faults_injected
        );
        for (name, n) in FAULT_KIND_NAMES.iter().zip(self.fault_counts) {
            if n > 0 {
                println!("  {name}: {n}");
            }
        }
        println!(
            "send rpc: {} timeouts, {} retries, {} dedup drops, {} registry gc",
            self.send_timeouts, self.send_retries, self.send_dedup_drops, self.registry_gc
        );
    }
}

/// The chaos driver's case mode.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Classic,
    Storm,
    Bytes,
}

/// Runs one pair in the selected mode; on failure prints the reproducer
/// and returns false.
fn run_one(
    script_seed: u64,
    fault_seed: u64,
    mode: Mode,
    napps: usize,
    totals: &mut Totals,
) -> bool {
    let result = match mode {
        Mode::Storm => run_storm_case(script_seed, fault_seed, napps),
        Mode::Bytes => run_bytes_case(script_seed, fault_seed),
        Mode::Classic => run_case(script_seed, fault_seed),
    };
    match result {
        Ok(stats) => {
            totals.absorb(&stats);
            true
        }
        Err(failure) => {
            println!("FAIL: script_seed={script_seed} fault_seed={fault_seed}");
            println!("  {failure}");
            println!("  plan:");
            for line in failure.plan.lines() {
                println!("    {line}");
            }
            println!("  shrinking...");
            let (ops, plan) = match mode {
                Mode::Storm => (
                    generate_storm_ops(script_seed, STORM_OPS, napps),
                    generate_storm_plan(fault_seed, napps),
                ),
                Mode::Bytes => (
                    generate_ops(script_seed, SCRIPT_OPS),
                    generate_bytes_plan(fault_seed),
                ),
                Mode::Classic => (
                    generate_ops(script_seed, SCRIPT_OPS),
                    generate_plan(fault_seed),
                ),
            };
            let (min_ops, min_plan) = match mode {
                Mode::Storm => shrink_storm(&ops, &plan, napps),
                Mode::Bytes => shrink_bytes(&ops, &plan),
                Mode::Classic => shrink(&ops, &plan),
            };
            println!(
                "  minimal reproducer: {} ops, {} fault specs",
                min_ops.len(),
                min_plan.specs().len()
            );
            for op in &min_ops {
                println!("    {op}");
            }
            for line in min_plan.describe().lines() {
                println!("    {line}");
            }
            // Confirm the shrunk case still fails (a flaky shrink would
            // mean nondeterminism, which is itself a bug worth flagging).
            let still_fails = match mode {
                Mode::Storm => run_storm_ops(&min_ops, &min_plan, napps).is_err(),
                Mode::Bytes => run_bytes_ops(&min_ops, &min_plan).is_err(),
                Mode::Classic => run_ops(&min_ops, &min_plan).is_err(),
            };
            if !still_fails {
                println!("  WARNING: shrunk reproducer no longer fails (nondeterminism?)");
            }
            let mode_flag = match mode {
                Mode::Storm => format!("--storm --apps {napps} "),
                Mode::Bytes => "--bytes ".to_string(),
                Mode::Classic => String::new(),
            };
            println!("  replay with: chaos {mode_flag}--replay {script_seed} {fault_seed}");
            false
        }
    }
}

fn parse_corpus(path: &str) -> Result<Vec<(u64, u64, Option<usize>)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(format!(
                "{path}:{}: expected `script_seed fault_seed [apps]`",
                lineno + 1
            ));
        };
        let apps = it.next();
        if it.next().is_some() {
            return Err(format!(
                "{path}:{}: expected `script_seed fault_seed [apps]`",
                lineno + 1
            ));
        }
        let a = a
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let b = b
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let apps = match apps {
            Some(n) => Some(
                n.parse()
                    .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            ),
            None => None,
        };
        pairs.push((a, b, apps));
    }
    Ok(pairs)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos [--storm | --bytes] [--apps N] [--seeds N] [--base-seed S] \
         [--corpus FILE] [--replay SCRIPT FAULT]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: u64 = 0;
    let mut base_seed: u64 = 1;
    let mut corpus: Option<String> = None;
    let mut replay: Option<(u64, u64)> = None;
    let mut mode = Mode::Classic;
    let mut apps: usize = STORM_APPS;
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Option<u64> {
        let v = it.next().and_then(|v| v.parse().ok());
        if v.is_none() {
            eprintln!("chaos: {name} needs a numeric argument");
        }
        v
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match num(&mut it, "--seeds") {
                Some(n) => seeds = n,
                None => return usage(),
            },
            "--base-seed" => match num(&mut it, "--base-seed") {
                Some(n) => base_seed = n,
                None => return usage(),
            },
            "--replay" => {
                let (Some(s), Some(f)) = (num(&mut it, "--replay"), num(&mut it, "--replay"))
                else {
                    return usage();
                };
                replay = Some((s, f));
            }
            "--corpus" => match it.next() {
                Some(p) => corpus = Some(p.clone()),
                None => return usage(),
            },
            "--storm" if mode == Mode::Classic => mode = Mode::Storm,
            "--bytes" if mode == Mode::Classic => mode = Mode::Bytes,
            "--apps" => match num(&mut it, "--apps") {
                Some(n) if n >= 2 => apps = n as usize,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if replay.is_none() && corpus.is_none() && seeds == 0 {
        return usage();
    }

    with_quiet_panics(|| {
        let mut totals = Totals::new();
        let mut failed = false;

        if let Some((s, f)) = replay {
            let ok = run_one(s, f, mode, apps, &mut totals);
            if ok {
                println!("replay script_seed={s} fault_seed={f}: ok");
                totals.print();
            }
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }

        if let Some(path) = corpus {
            let pairs = match parse_corpus(&path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::from(2);
                }
            };
            println!("corpus: {} pairs from {path}", pairs.len());
            for (s, f, n) in pairs {
                failed |= !run_one(s, f, mode, n.unwrap_or(apps), &mut totals);
            }
        }

        if seeds > 0 {
            println!("fresh: {seeds} pairs from base seed {base_seed}");
            for i in 0..seeds {
                // Decorrelate the two streams: the fault seed is a mixed
                // function of the script seed so adjacent cases share
                // neither scripts nor plans.
                let script_seed = base_seed.wrapping_add(i);
                let fault_seed = script_seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                failed |= !run_one(script_seed, fault_seed, mode, apps, &mut totals);
            }
        }

        totals.print();
        if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    })
}
