//! Ablation for **Section 3.3**: "Tk caches information about the X
//! resources currently in use ... only the first request results in server
//! traffic ... a substantial boost in performance in the common case where
//! a few resources are used in many different widgets."
//!
//! Builds the same 50-widget interface with the resource cache enabled and
//! disabled, and reports the server round trips each configuration needed.
//!
//! Run with: `cargo run -p tk-bench --release --bin cache_ablation`

use std::time::Instant;

use tk_bench::env_with_apps;

/// Builds N widgets that all share a handful of colors and one font.
fn build_interface(app: &tk::TkApp, n: usize) {
    for i in 0..n {
        let color = ["red", "MediumSeaGreen", "SteelBlue", "gray"][i % 4];
        app.eval(&format!(
            "button .w{i} -text \"Widget {i}\" -bg {color} -font fixed -command {{}}"
        ))
        .expect("create widget");
        app.eval(&format!("pack append . .w{i} {{top}}")).unwrap();
    }
    app.update();
    for i in 0..n {
        app.eval(&format!("destroy .w{i}")).unwrap();
    }
    app.update();
}

/// The IPC latency a real X round trip costs on a local connection
/// (~tens of microseconds on 1991 workstations were milliseconds; this is
/// a conservative modern-local-socket figure).
const ROUND_TRIP_COST: std::time::Duration = std::time::Duration::from_micros(50);

fn run(cache_enabled: bool, n: usize) -> (u64, u64, f64) {
    let (env, apps) = env_with_apps(&["ablation"]);
    let app = &apps[0];
    env.display()
        .with_server(|s| s.set_round_trip_cost(ROUND_TRIP_COST));
    app.cache().set_enabled(cache_enabled);
    // One warm-up pass so startup costs don't pollute the comparison.
    build_interface(app, 4);
    env.display().with_server(|s| s.reset_stats());
    let start = Instant::now();
    build_interface(app, n);
    let secs = start.elapsed().as_secs_f64();
    let stats = app.conn().stats();
    (stats.requests, stats.round_trips, secs)
}

fn main() {
    const N: usize = 50;
    println!("Section 3.3 ablation — resource caches vs server traffic");
    println!(
        "({N} widgets sharing 4 colors and 1 font; each round trip charged {}\u{b5}s\n\
         of simulated IPC latency, as a real X connection would pay)\n",
        ROUND_TRIP_COST.as_micros()
    );
    println!(
        "{:<16} {:>10} {:>13} {:>12}",
        "configuration", "requests", "round trips", "time"
    );
    let (req_on, rt_on, t_on) = run(true, N);
    let (req_off, rt_off, t_off) = run(false, N);
    println!(
        "{:<16} {:>10} {:>13} {:>12}",
        "cache enabled",
        req_on,
        rt_on,
        tk_bench::fmt_time(t_on)
    );
    println!(
        "{:<16} {:>10} {:>13} {:>12}",
        "cache disabled",
        req_off,
        rt_off,
        tk_bench::fmt_time(t_off)
    );
    println!(
        "\nThe cache removes {} round trips ({:.1}x fewer), reproducing the\n\
         section's claim that textual-name caching cuts server traffic.",
        rt_off - rt_on,
        rt_off as f64 / rt_on.max(1) as f64
    );
    assert!(rt_on < rt_off, "the cache must reduce round trips");
}
