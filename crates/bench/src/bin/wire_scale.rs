//! `wire_scale` — thread-scaling measurement for the framed wire
//! transport. N `TkEnv`s run on their own OS threads against one shared
//! wire server (`Display::wire_handle` / `Display::from_wire`), each
//! evaluating a fixed Tcl + widget + redraw workload. Client-side work
//! (parsing, substitution, layout, damage) runs on the app threads;
//! only protocol dispatch serializes on the server thread.
//!
//! For each N the same *total* work also runs the old way — N apps
//! multiplexed on a single thread — so the printed speedup is threaded
//! vs. what the pre-wire architecture could do at all. Numbers land in
//! EXPERIMENTS.md.
//!
//! Run with: `cargo run -p tk-bench --release --bin wire_scale`
//! (requires the wire transport; unset `RTK_NO_WIRE`).

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use tk::{TkApp, TkEnv};
use xsim::Display;

const ITERS_PER_APP: usize = 2_000;

/// One app's workload: hot Tcl eval plus a reconfigure-and-repaint per
/// iteration, so both the interpreter and the protocol stay busy.
fn churn(env: &TkEnv, app: &TkApp, iters: usize) {
    for k in 0..iters {
        app.eval(&format!("set x [expr {k} * 3 + 1]; .l configure -text v$x"))
            .unwrap();
        env.dispatch_all();
    }
}

fn setup(env: &TkEnv, name: &str) -> TkApp {
    let app = env.app(name);
    app.eval("label .l -text boot").unwrap();
    app.eval("pack append . .l {top}").unwrap();
    env.dispatch_all();
    app
}

/// N apps on N OS threads, one shared wire server.
fn run_threaded(n: usize) -> f64 {
    let env = TkEnv::new();
    let handle = env
        .display()
        .wire_handle()
        .expect("wire_scale needs the wire transport (unset RTK_NO_WIRE)");
    // Registration rewrites the shared registry property
    // (read-modify-write, serialized by XGrabServer in real Tk).
    let startup = Arc::new(Mutex::new(()));
    let start = Instant::now();
    let mut workers = Vec::new();
    for i in 0..n {
        let handle = handle.clone();
        let startup = startup.clone();
        workers.push(thread::spawn(move || {
            let env = TkEnv::with_display(Display::from_wire(&handle));
            let app = {
                let _g = startup.lock().unwrap();
                setup(&env, &format!("scale{i}"))
            };
            churn(&env, &app, ITERS_PER_APP);
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    start.elapsed().as_secs_f64()
}

/// The same total work the pre-wire way: N apps multiplexed on one
/// thread, round-robin.
fn run_single_threaded(n: usize) -> f64 {
    let env = TkEnv::new();
    let apps: Vec<TkApp> = (0..n).map(|i| setup(&env, &format!("mono{i}"))).collect();
    let start = Instant::now();
    for k in 0..ITERS_PER_APP {
        for app in &apps {
            app.eval(&format!("set x [expr {k} * 3 + 1]; .l configure -text v$x"))
                .unwrap();
            env.dispatch_all();
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    println!(
        "wire_scale: {ITERS_PER_APP} eval+redraw iterations per app, \
         one shared wire server"
    );
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>9}",
        "apps", "threaded_s", "1-thread_s", "evals/s", "speedup"
    );
    for n in [1, 2, 4, 8] {
        let threaded = run_threaded(n);
        let single = run_single_threaded(n);
        let total = (n * ITERS_PER_APP) as f64;
        println!(
            "{n:>5} {threaded:>14.3} {single:>14.3} {:>12.0} {:>8.2}x",
            total / threaded,
            single / threaded
        );
    }
}
