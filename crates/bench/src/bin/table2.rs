//! Reproduces **Table II** of the paper: "Execution times for selected
//! operations in Tk" — measured on this reproduction, printed alongside
//! the paper's DECstation 3100 numbers.
//!
//! | Operation                           | Paper  |
//! |-------------------------------------|--------|
//! | Simple Tcl command (set a 1)        | 68 µs  |
//! | Send empty command                  | 15 ms  |
//! | Create, display, delete 50 buttons  | 440 ms |
//!
//! Absolute values on modern hardware are orders of magnitude smaller; the
//! *shape* — send costs hundreds of simple commands, widget creation costs
//! hundreds of sends — is what EXPERIMENTS.md compares. The paper also
//! reports that in the 50-button measurement "about half of the elapsed
//! time was spent executing in the client and about half in the X server";
//! because the simulated server runs in-process, we report the protocol
//! accounting (requests, round trips, drawing requests) for that row.
//!
//! Run with: `cargo run -p tk-bench --release --bin table2`

use tk_bench::{create_display_delete_buttons, env_with_apps, fmt_time, time_per_iter};

fn main() {
    println!("Table II — execution times, paper vs this reproduction\n");
    println!(
        "{:<38} {:>12} {:>14}",
        "Operation", "Paper (1991)", "Measured"
    );

    // Row 1: simple Tcl command.
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    let t_set = time_per_iter(200_000, || {
        interp.eval("set a 1").unwrap();
    });
    println!(
        "{:<38} {:>12} {:>14}",
        "Simple Tcl command (set a 1)",
        "68 \u{b5}s",
        fmt_time(t_set)
    );

    // Row 2: send an empty command between two applications. Real send
    // paid X IPC for its property traffic; the simulated server charges
    // the same synthetic round-trip latency the cache ablation uses.
    let rt_cost = std::time::Duration::from_micros(50);
    let (env_send, apps) = env_with_apps(&["alpha", "beta"]);
    env_send
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm up
    let t_send = time_per_iter(5_000, || {
        sender.eval("send beta {}").unwrap();
    });
    println!(
        "{:<38} {:>12} {:>14}",
        "Send empty command",
        "15 ms",
        fmt_time(t_send)
    );

    // Row 3: create, display, delete 50 buttons.
    let (env50, apps50) = env_with_apps(&["buttons"]);
    env50
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    env50.display().with_server(|s| s.reset_stats());
    let iters = 20;
    let t_buttons = time_per_iter(iters, || {
        create_display_delete_buttons(app, 50);
    });
    println!(
        "{:<38} {:>12} {:>14}",
        "Create, display, delete 50 buttons",
        "440 ms",
        fmt_time(t_buttons)
    );

    let stats = app.conn().stats();
    let (draws, server_time) = env50
        .display()
        .with_server(|s| (s.draw_requests, s.work_time));
    println!(
        "\n  50-button protocol profile (per iteration): {} requests, {} round trips,\n\
         \u{20} {} drawing requests executed by the server",
        stats.requests / iters,
        stats.round_trips / iters,
        draws / iters
    );
    // The paper: "about half of the elapsed time was spent executing in
    // the client and about half in the X server."
    let server_frac = server_time.as_secs_f64() / (t_buttons * iters as f64);
    println!(
        "  client/server split: {:.0}% client, {:.0}% server (paper: ~50/50)",
        100.0 * (1.0 - server_frac),
        100.0 * server_frac
    );

    println!("\nShape checks against the paper:");
    println!(
        "  send / simple-command ratio: paper {:.0}x, measured {:.0}x",
        15_000.0 / 68.0,
        t_send / t_set
    );
    println!(
        "  50-buttons / send ratio:     paper {:.0}x, measured {:.0}x",
        440.0 / 15.0,
        t_buttons / t_send
    );
    println!(
        "  commands per 100 ms (the \"hundreds of Tcl commands within a human\n\
         \u{20} response time\" claim): paper ~1470, measured {:.0}",
        0.1 / t_set
    );
}
