//! `bench` — replays the Table II workloads with the observability core
//! switched on and writes a machine-readable `BENCH_obs.json`: per-workload
//! latency percentiles (from `rtk_obs::Histogram`), protocol request and
//! round-trip counts per kind, and resource-cache hit rates.
//!
//! Run with: `cargo run -p tk-bench --release --bin bench -- [output.json]`
//! (the output path defaults to `BENCH_obs.json` in the current directory).
//!
//! Two extra modes back the CI request-budget gate. The protocol workloads
//! are fully deterministic (single-threaded, no timing-dependent requests),
//! so CI pins their *exact* request/round-trip/flush counts:
//!
//! * `bench -- --write-budgets [BUDGETS.json]` runs the workloads and
//!   records their protocol counters;
//! * `bench -- --check-budgets [BUDGETS.json]` re-runs them (twice, to
//!   prove determinism) and fails if any counter drifted from the
//!   checked-in file. An intentional protocol change regenerates the file
//!   with `--write-budgets` and commits the diff.

use std::time::Instant;

use rtk_obs::{json, Histogram};
use tk_bench::{create_display_delete_buttons, env_with_apps, fmt_time};
use xsim::ClientStats;

/// The counters pinned per workload, in file order.
fn budget_fields(stats: &ClientStats) -> [(&'static str, u64); 6] {
    [
        ("requests", stats.requests),
        ("round_trips", stats.round_trips),
        ("flushes", stats.flushes),
        ("batched_requests", stats.batched_requests),
        ("max_batch", stats.max_batch),
        ("max_pending_replies", stats.max_pending_replies),
    ]
}

/// Runs the deterministic protocol workloads (no synthetic round-trip
/// cost, reduced iteration counts — the counters scale linearly, so fewer
/// iterations pin the same behavior) and returns each one's client stats.
fn budget_workloads() -> Vec<(&'static str, u64, ClientStats)> {
    let mut out = Vec::new();

    let (_env, apps) = env_with_apps(&["alpha", "beta"]);
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm the handshake atoms
    sender.conn().reset_obs();
    let send_iters = 200;
    for _ in 0..send_iters {
        sender.eval("send beta {}").unwrap();
    }
    out.push(("send_empty", send_iters, sender.conn().stats()));

    let (_env50, apps50) = env_with_apps(&["buttons"]);
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    app.eval("obs reset").unwrap();
    let button_iters = 5;
    for _ in 0..button_iters {
        create_display_delete_buttons(app, 50);
    }
    out.push(("buttons_50", button_iters, app.conn().stats()));

    out
}

fn budgets_to_json(runs: &[(&'static str, u64, ClientStats)]) -> String {
    let mut workloads = json::Object::new();
    for (name, iters, stats) in runs {
        let mut w = json::Object::new();
        w.field_u64("iters", *iters);
        for (field, value) in budget_fields(stats) {
            w.field_u64(field, value);
        }
        workloads.field_raw(name, &w.build());
    }
    let mut root = json::Object::new();
    root.field_str(
        "comment",
        "Exact protocol budgets for the deterministic workloads; \
         regenerate with `cargo run -p tk-bench --bin bench -- --write-budgets` \
         after an intentional protocol change.",
    );
    root.field_raw("workloads", &workloads.build());
    root.build()
}

/// Runs the budget workloads twice; aborts if the two runs disagree
/// (the budgets are only enforceable because the counts are exact).
fn measured_budgets() -> Vec<(&'static str, u64, ClientStats)> {
    let first = budget_workloads();
    let second = budget_workloads();
    for ((name, _, a), (_, _, b)) in first.iter().zip(&second) {
        assert_eq!(
            a, b,
            "workload {name} is not deterministic: two identical runs \
             produced different protocol counters"
        );
    }
    first
}

fn write_budgets(path: &str) {
    let text = budgets_to_json(&measured_budgets());
    std::fs::write(path, format!("{text}\n")).expect("write budgets file");
    println!("wrote {path}");
}

fn check_budgets(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run --write-budgets first)"));
    let expected = json::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    let expected = expected
        .get("workloads")
        .unwrap_or_else(|| panic!("{path}: missing \"workloads\""));

    let mut failures = Vec::new();
    for (name, iters, stats) in measured_budgets() {
        let Some(budget) = expected.get(name) else {
            failures.push(format!("workload {name}: missing from {path}"));
            continue;
        };
        let want_iters = budget.get("iters").and_then(|v| v.as_u64());
        if want_iters != Some(iters) {
            failures.push(format!(
                "workload {name}: iters changed ({want_iters:?} in file, {iters} measured) \
                 — regenerate the budgets"
            ));
            continue;
        }
        for (field, got) in budget_fields(&stats) {
            match budget.get(field).and_then(|v| v.as_u64()) {
                Some(want) if want == got => {}
                Some(want) => failures.push(format!(
                    "workload {name}: {field} = {got}, budget says {want}"
                )),
                None => failures.push(format!("workload {name}: budget lacks field {field}")),
            }
        }
        println!("budget ok: {name} ({iters} iters)");
    }

    if !failures.is_empty() {
        eprintln!("request budgets FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the protocol change is intentional, regenerate with \
             `cargo run -p tk-bench --bin bench -- --write-budgets` and commit BUDGETS.json"
        );
        std::process::exit(1);
    }
    println!("request budgets OK ({path})");
}

/// Times `iters` runs of `f`, recording each run into a histogram.
fn measure(iters: u64, mut f: impl FnMut()) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..iters {
        let start = Instant::now();
        f();
        h.record_duration(start.elapsed());
    }
    h
}

fn workload_json(name: &str, iters: u64, h: &Histogram, extra: Option<(&str, String)>) -> String {
    let mut o = json::Object::new();
    o.field_str("name", name);
    o.field_u64("iters", iters);
    o.field_raw("time_ns", &h.to_json());
    if let Some((key, raw)) = extra {
        o.field_raw(key, &raw);
    }
    o.build()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--write-budgets") => {
            write_budgets(args.get(1).map_or("BUDGETS.json", String::as_str));
            return;
        }
        Some("--check-budgets") => {
            check_budgets(args.get(1).map_or("BUDGETS.json", String::as_str));
            return;
        }
        _ => {}
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Row 1: simple Tcl command (no X traffic at all).
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    let set_iters = 100_000;
    let h_set = measure(set_iters, || {
        interp.eval("set a 1").unwrap();
    });
    println!(
        "set_a_1:     p50 {}",
        fmt_time(h_set.quantile(0.5) as f64 * 1e-9)
    );

    // Row 2: send an empty command between two applications, with the
    // synthetic round-trip cost the paper's IPC numbers imply.
    let rt_cost = std::time::Duration::from_micros(50);
    let (env_send, apps) = env_with_apps(&["alpha", "beta"]);
    env_send
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm up
    sender.conn().reset_obs();
    let send_iters = 2_000;
    let h_send = measure(send_iters, || {
        sender.eval("send beta {}").unwrap();
    });
    let send_protocol = sender.conn().obs_json();
    println!(
        "send_empty:  p50 {}",
        fmt_time(h_send.quantile(0.5) as f64 * 1e-9)
    );

    // Row 3: create, display, delete 50 buttons, with the full
    // observability stack collecting underneath.
    let (env50, apps50) = env_with_apps(&["buttons"]);
    env50
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    app.eval("obs reset").unwrap();
    let button_iters = 20;
    let h_buttons = measure(button_iters, || {
        create_display_delete_buttons(app, 50);
    });
    let buttons_dump = tk::obs_cmd::dump_json(app);
    let stats = app.conn().stats();
    println!(
        "buttons_50:  p50 {} ({} requests, {} round trips, {} flushes per iteration)",
        fmt_time(h_buttons.quantile(0.5) as f64 * 1e-9),
        stats.requests / button_iters,
        stats.round_trips / button_iters,
        stats.flushes / button_iters
    );

    // The same workload with the output buffer disabled: every request
    // becomes its own client→server transition, the transport the toolkit
    // had before batching. The ratio of "server trips" (flushes + round
    // trips — each is one blocking transition) is the headline batching
    // win.
    let (env_nb, apps_nb) = env_with_apps(&["buttons"]);
    env_nb
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app_nb = &apps_nb[0];
    app_nb.conn().set_batching(false);
    create_display_delete_buttons(app_nb, 50); // warm caches
    app_nb.eval("obs reset").unwrap();
    let h_unbatched = measure(button_iters, || {
        create_display_delete_buttons(app_nb, 50);
    });
    let stats_nb = app_nb.conn().stats();
    let trips = stats.flushes + stats.round_trips;
    let trips_nb = stats_nb.flushes + stats_nb.round_trips;
    println!(
        "buttons_50 unbatched: p50 {} ({} server trips/iter vs {} batched, {:.1}x)",
        fmt_time(h_unbatched.quantile(0.5) as f64 * 1e-9),
        trips_nb / button_iters,
        trips / button_iters,
        trips_nb as f64 / trips.max(1) as f64
    );

    let mut comparison = json::Object::new();
    for (key, s, h) in [
        ("batched", &stats, &h_buttons),
        ("unbatched", &stats_nb, &h_unbatched),
    ] {
        let mut side = json::Object::new();
        side.field_u64("requests", s.requests);
        side.field_u64("round_trips", s.round_trips);
        side.field_u64("flushes", s.flushes);
        side.field_u64("server_trips", s.flushes + s.round_trips);
        side.field_u64("max_batch", s.max_batch);
        side.field_u64("p50_ns", h.quantile(0.5));
        comparison.field_raw(key, &side.build());
    }

    let mut workloads = json::Array::new();
    workloads.push_raw(&workload_json("set_a_1", set_iters, &h_set, None));
    workloads.push_raw(&workload_json(
        "send_empty",
        send_iters,
        &h_send,
        Some(("protocol", send_protocol)),
    ));
    workloads.push_raw(&workload_json(
        "buttons_50",
        button_iters,
        &h_buttons,
        Some(("obs", buttons_dump)),
    ));
    workloads.push_raw(&workload_json(
        "buttons_50_unbatched",
        button_iters,
        &h_unbatched,
        Some(("batching_comparison", comparison.build())),
    ));

    let mut root = json::Object::new();
    root.field_str("source", "Table II workloads, Ousterhout USENIX 1991");
    root.field_str("regenerate", "cargo run -p tk-bench --release --bin bench");
    root.field_u64("round_trip_cost_us", rt_cost.as_micros() as u64);
    root.field_raw("workloads", &workloads.build());
    let text = root.build();
    assert!(json::is_valid(&text), "bench produced invalid JSON");

    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
