//! `bench` — replays the Table II workloads with the observability core
//! switched on and writes a machine-readable `BENCH_obs.json`: per-workload
//! latency percentiles (from `rtk_obs::Histogram`), protocol request and
//! round-trip counts per kind, and resource-cache hit rates.
//!
//! Run with: `cargo run -p tk-bench --release --bin bench -- [output.json]`
//! (the output path defaults to `BENCH_obs.json` in the current directory).
//!
//! Two extra modes back the CI request-budget gate. The protocol workloads
//! are fully deterministic (single-threaded, no timing-dependent requests),
//! so CI pins their *exact* request/round-trip/flush counts:
//!
//! * `bench -- --write-budgets [BUDGETS.json]` runs the workloads and
//!   records their protocol counters;
//! * `bench -- --check-budgets [BUDGETS.json]` re-runs them (twice, to
//!   prove determinism) and fails if any counter drifted from the
//!   checked-in file. An intentional protocol change regenerates the file
//!   with `--write-budgets` and commits the diff.
//!
//! The budgets also pin each deterministic workload's *span-tree shape*
//! (span counts by kind, parent→child edges, zero orphans) from the causal
//! tracer, so a pipeline change that re-wires causality fails CI the same
//! way a protocol change does. Durations stay report-only.
//!
//! The interpreter workloads (`eval_hot`, `bind_dispatch`) run in both
//! compile modes and pin the Tcl compile/cache counters the same way: the
//! warm program cache must parse >= 10x fewer commands than its
//! `RTK_NO_COMPILE` twin, and any drift in compiles, hits, or evictions
//! fails the budget check.
//!
//! Three trace-export modes run an instrumented workload suite (a
//! cross-application send pair with one fault-dropped send, plus the
//! buttons workload augmented with a bound button and a real click):
//!
//! * `bench -- --trace [trace.json]` writes Chrome trace-event JSON
//!   loadable in Perfetto / `chrome://tracing`;
//! * `bench -- --trace-folded [trace.folded]` writes folded stacks for
//!   flamegraph tooling, weighted by wall-clock self time;
//! * `bench -- --trace-vprofile [trace.vprofile]` writes the deterministic
//!   virtual-clock profile (same folded format, simulated-ms weights).

use std::time::Instant;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtk_obs::{json, Histogram, SpanShape};
use tk::{TkApp, TkEnv};
use tk_bench::fleet::{percentile, run_fleet, run_wire_mesh, watchdog, FleetReport, MeshConfig};
use tk_bench::{
    bind_dispatch, blink_button, create_display_delete_buttons, env_with_apps, env_with_apps_wire,
    eval_hot, fmt_time, scroll_listbox, setup_bind_dispatch, setup_blink, setup_entry,
    setup_eval_hot, setup_listbox, type_into_entry,
};
use xsim::{ClientStats, FaultPlan, RequestKind};

/// The fleet size whose deterministic percentiles BUDGETS.json pins
/// (`--write-budgets` regenerates it; the CI gate is
/// `bench -- --fleet 64 --check-budgets`).
const FLEET_BUDGET_APPS: usize = 64;
/// Rounds for the threaded (report-only) mesh leg of `--fleet`.
const FLEET_MESH_ROUNDS: u64 = 3;

/// The counters pinned per workload, in file order.
fn budget_fields(stats: &ClientStats) -> [(&'static str, u64); 7] {
    [
        ("requests", stats.requests),
        ("round_trips", stats.round_trips),
        ("flushes", stats.flushes),
        ("batched_requests", stats.batched_requests),
        ("max_batch", stats.max_batch),
        ("max_pending_replies", stats.max_pending_replies),
        ("pixels_drawn", stats.pixels_drawn),
    ]
}

/// An incremental-redraw workload: name, setup, and one deterministic run.
type IncrWorkload = (&'static str, fn(&TkApp), fn(&TkApp));

/// The incremental-redraw workloads, budgeted in both damage modes (the
/// `_full` twin disables damage).
fn incremental_workloads() -> [IncrWorkload; 3] {
    [
        ("type_entry", setup_entry as fn(&TkApp), |app: &TkApp| {
            type_into_entry(app, 30)
        }),
        ("scroll_listbox", setup_listbox, |app: &TkApp| {
            scroll_listbox(app, 20)
        }),
        ("blink_button", setup_blink, |app: &TkApp| {
            blink_button(app, 15)
        }),
    ]
}

/// One budget run: workload name, iterations, protocol counters, (for the
/// workloads whose causal pipeline CI pins) the span-tree shape, (for the
/// interpreter workloads) the Tcl compile/cache counters, and (for the
/// wire workload) the framed-transport frame/byte counters.
type BudgetRun = (
    &'static str,
    u64,
    ClientStats,
    Option<SpanShape>,
    Vec<(&'static str, u64)>,
    Vec<(&'static str, u64)>,
);

/// Aggregates the span-tree shape across every application in a workload
/// (a cross-app send involves spans on both sides).
fn shape_of(apps: &[TkApp]) -> SpanShape {
    let mut shape = SpanShape::default();
    for app in apps {
        shape.collect(&app.tracer().snapshot());
    }
    shape
}

/// Runs the deterministic protocol workloads (no synthetic round-trip
/// cost, reduced iteration counts — the counters scale linearly, so fewer
/// iterations pin the same behavior) and returns each one's client stats.
fn budget_workloads() -> Vec<BudgetRun> {
    let mut out = Vec::new();

    let (_env, apps) = env_with_apps(&["alpha", "beta"]);
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm the handshake atoms
    sender.conn().reset_obs();
    apps[1].conn().reset_obs(); // span epoch boundary on the receiver too
    let send_iters = 200;
    for _ in 0..send_iters {
        sender.eval("send beta {}").unwrap();
    }
    let send_stats = sender.conn().stats();
    out.push((
        "send_empty",
        send_iters,
        send_stats,
        Some(shape_of(&apps)),
        Vec::new(),
        Vec::new(),
    ));

    // The wire workload: the same cross-application send traffic, but on
    // a display forced onto the framed byte transport (independent of
    // `RTK_NO_WIRE`, so this budget holds in both CI transport runs).
    // Every frame the sender encodes, decodes, or ships is pinned — a
    // change to the frame layout, the batching boundaries, or the
    // request stream shows up as an exact counter diff here.
    let (_wenv, wapps) = env_with_apps_wire(&["wa", "wb"]);
    let wsender = &wapps[0];
    wsender.eval("send wb {}").unwrap(); // warm the handshake atoms
    wsender.conn().reset_obs();
    wapps[1].conn().reset_obs();
    let wire_iters = 100;
    for _ in 0..wire_iters {
        wsender.eval("send wb {}").unwrap();
    }
    let w = wsender.conn().wire_stats();
    assert!(
        w.active(),
        "the wire workload must actually cross the framed transport"
    );
    let wire_counters = vec![
        ("frames_encoded", w.frames_encoded),
        ("bytes_encoded", w.bytes_encoded),
        ("frames_decoded", w.frames_decoded),
        ("bytes_decoded", w.bytes_decoded),
        ("flushes", w.flushes),
        ("frame_bytes_max", w.frame_bytes.max()),
    ];
    out.push((
        "wire_send",
        wire_iters,
        wsender.conn().stats(),
        None,
        Vec::new(),
        wire_counters,
    ));

    let (_env50, apps50) = env_with_apps(&["buttons"]);
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    app.eval("obs reset").unwrap();
    let button_iters = 5;
    for _ in 0..button_iters {
        create_display_delete_buttons(app, 50);
    }
    let button_stats = app.conn().stats();
    out.push((
        "buttons_50",
        button_iters,
        button_stats,
        Some(shape_of(&apps50)),
        Vec::new(),
        Vec::new(),
    ));

    // The incremental workloads in both damage modes. Pinning
    // pixels_drawn for each pair makes the >= 10x repaint win a budget,
    // not just a bench headline.
    for (name, setup, run) in incremental_workloads() {
        let full_name: &'static str = match name {
            "type_entry" => "type_entry_full",
            "scroll_listbox" => "scroll_listbox_full",
            _ => "blink_button_full",
        };
        for (damage, label) in [(true, name), (false, full_name)] {
            let (_env, apps) = env_with_apps(&["incr"]);
            let app = &apps[0];
            app.set_damage(damage);
            setup(app);
            run(app); // warm caches
            app.eval("obs reset").unwrap();
            run(app);
            out.push((label, 1, app.conn().stats(), None, Vec::new(), Vec::new()));
        }
    }

    // The interpreter workloads in both compile modes. Pinning tcl.parses
    // for each pair makes the >= 10x parse win a budget, not just a bench
    // headline; the compile/hit/eviction counters catch cache regressions.
    let eval_iters = 25;
    for (enabled, label) in [(true, "eval_hot"), (false, "eval_hot_nocompile")] {
        let (_env, apps) = env_with_apps(&["evalhot"]);
        let app = &apps[0];
        app.interp().set_compile(enabled);
        setup_eval_hot(app);
        eval_hot(app, eval_iters as usize); // warm caches
        app.eval("obs reset").unwrap();
        eval_hot(app, eval_iters as usize);
        let tcl = app.interp().compile_counters();
        out.push((label, eval_iters, app.conn().stats(), None, tcl, Vec::new()));
    }

    let click_iters = 20;
    for (enabled, label) in [(true, "bind_dispatch"), (false, "bind_dispatch_nocompile")] {
        let (env, apps) = env_with_apps(&["binddisp"]);
        let app = &apps[0];
        app.interp().set_compile(enabled);
        setup_bind_dispatch(app);
        bind_dispatch(&env, app, click_iters as usize); // warm caches
        app.eval("obs reset").unwrap();
        bind_dispatch(&env, app, click_iters as usize);
        let tcl = app.interp().compile_counters();
        out.push((
            label,
            click_iters,
            app.conn().stats(),
            None,
            tcl,
            Vec::new(),
        ));
    }

    out
}

/// Asserts the damage engine's headline win on the measured counters:
/// each incremental workload rasterizes at least 10x fewer pixels than
/// its full-redraw twin.
fn check_damage_ratios(runs: &[BudgetRun]) {
    for base in ["type_entry", "scroll_listbox", "blink_button"] {
        let pixels = |n: &str| {
            runs.iter()
                .find(|(name, ..)| *name == n)
                .map(|(_, _, s, ..)| s.pixels_drawn)
                .unwrap_or_else(|| panic!("missing workload {n}"))
        };
        let damage = pixels(base);
        let full = pixels(&format!("{base}_full"));
        assert!(
            full >= 10 * damage.max(1),
            "workload {base}: damage-mode repaints must rasterize >= 10x fewer \
             pixels than full redraws (damage {damage}, full {full})"
        );
    }
}

/// Asserts the compile cache's headline win on the measured counters:
/// each interpreter workload, once warm, parses at least 10x fewer
/// commands than its `RTK_NO_COMPILE`-equivalent twin.
fn check_compile_ratios(runs: &[BudgetRun]) {
    for base in ["eval_hot", "bind_dispatch"] {
        let parses = |n: &str| {
            let (_, _, _, _, tcl, _) = runs
                .iter()
                .find(|(name, ..)| *name == n)
                .unwrap_or_else(|| panic!("missing workload {n}"));
            tcl.iter()
                .find(|(f, _)| *f == "tcl.parses")
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("workload {n} lacks a tcl.parses counter"))
        };
        let compiled = parses(base);
        let direct = parses(&format!("{base}_nocompile"));
        assert!(
            direct >= 10 * compiled.max(1),
            "workload {base}: the warm program cache must parse >= 10x fewer \
             commands than direct evaluation (compiled {compiled}, direct {direct})"
        );
    }
}

/// The integer fields of a fleet report, in file order.
fn fleet_fields(r: &FleetReport) -> [(&'static str, u64); 10] {
    [
        ("apps", r.apps as u64),
        ("rounds", r.rounds),
        ("sends", r.sends),
        ("send_latency_p50_ms", r.send_latency_p50_ms),
        ("send_latency_p95_ms", r.send_latency_p95_ms),
        ("send_latency_p99_ms", r.send_latency_p99_ms),
        ("send_latency_max_ms", r.send_latency_max_ms),
        ("backpressure_stalls", r.backpressure_stalls),
        ("deadline_misses", r.deadline_misses),
        ("send_errors", r.send_errors),
    ]
}

/// Runs the deterministic fleet twice; aborts if the runs disagree (the
/// percentile budgets are only enforceable because the virtual-clock
/// latencies are exact).
fn measured_fleet(napps: usize) -> FleetReport {
    let first = run_fleet(napps);
    let second = run_fleet(napps);
    assert_eq!(
        first, second,
        "the {napps}-app fleet is not deterministic: two identical runs \
         produced different latency percentiles or stall counts"
    );
    first
}

fn budgets_to_json(runs: &[BudgetRun], fleet: &FleetReport) -> String {
    let mut workloads = json::Object::new();
    for (name, iters, stats, shape, tcl, wire) in runs {
        let mut w = json::Object::new();
        w.field_u64("iters", *iters);
        for (field, value) in budget_fields(stats) {
            w.field_u64(field, value);
        }
        if let Some(shape) = shape {
            w.field_raw("spans", &shape.to_json());
        }
        if !tcl.is_empty() {
            let mut t = json::Object::new();
            for (field, value) in tcl {
                t.field_u64(field, *value);
            }
            w.field_raw("tcl", &t.build());
        }
        if !wire.is_empty() {
            let mut t = json::Object::new();
            for (field, value) in wire {
                t.field_u64(field, *value);
            }
            w.field_raw("wire", &t.build());
        }
        workloads.field_raw(name, &w.build());
    }
    let mut root = json::Object::new();
    root.field_str(
        "comment",
        "Exact protocol budgets for the deterministic workloads; \
         regenerate with `cargo run -p tk-bench --bin bench -- --write-budgets` \
         after an intentional protocol change.",
    );
    root.field_raw("workloads", &workloads.build());
    let mut fleets = json::Object::new();
    let mut f = json::Object::new();
    for (field, value) in fleet_fields(fleet) {
        f.field_u64(field, value);
    }
    fleets.field_raw(&format!("fleet{}", fleet.apps), &f.build());
    root.field_raw("fleet", &fleets.build());
    root.build()
}

/// Runs the budget workloads twice; aborts if the two runs disagree
/// (the budgets are only enforceable because the counts are exact).
fn measured_budgets() -> Vec<BudgetRun> {
    let first = budget_workloads();
    let second = budget_workloads();
    for ((name, _, a, sa, ta, wa), (_, _, b, sb, tb, wb)) in first.iter().zip(&second) {
        assert_eq!(
            a, b,
            "workload {name} is not deterministic: two identical runs \
             produced different protocol counters"
        );
        assert_eq!(
            sa, sb,
            "workload {name} is not deterministic: two identical runs \
             produced different span-tree shapes"
        );
        assert_eq!(
            ta, tb,
            "workload {name} is not deterministic: two identical runs \
             produced different Tcl compile counters"
        );
        assert_eq!(
            wa, wb,
            "workload {name} is not deterministic: two identical runs \
             produced different wire frame/byte counters"
        );
    }
    check_damage_ratios(&first);
    check_compile_ratios(&first);
    first
}

fn write_budgets(path: &str) {
    let runs = measured_budgets();
    let fleet = measured_fleet(FLEET_BUDGET_APPS);
    let text = budgets_to_json(&runs, &fleet);
    std::fs::write(path, format!("{text}\n")).expect("write budgets file");
    println!("wrote {path}");
}

fn check_budgets(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run --write-budgets first)"));
    let expected = json::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    let expected = expected
        .get("workloads")
        .unwrap_or_else(|| panic!("{path}: missing \"workloads\""));

    let mut failures = Vec::new();
    for (name, iters, stats, shape, tcl, wire) in measured_budgets() {
        let Some(budget) = expected.get(name) else {
            failures.push(format!("workload {name}: missing from {path}"));
            continue;
        };
        let want_iters = budget.get("iters").and_then(|v| v.as_u64());
        if want_iters != Some(iters) {
            failures.push(format!(
                "workload {name}: iters changed ({want_iters:?} in file, {iters} measured) \
                 — regenerate the budgets"
            ));
            continue;
        }
        for (field, got) in budget_fields(&stats) {
            match budget.get(field).and_then(|v| v.as_u64()) {
                Some(want) if want == got => {}
                Some(want) => failures.push(format!(
                    "workload {name}: {field} = {got}, budget says {want}"
                )),
                None => failures.push(format!("workload {name}: budget lacks field {field}")),
            }
        }
        for (field, got) in &tcl {
            match budget
                .get("tcl")
                .and_then(|t| t.get(field))
                .and_then(|v| v.as_u64())
            {
                Some(want) if want == *got => {}
                Some(want) => failures.push(format!(
                    "workload {name}: {field} = {got}, budget says {want}"
                )),
                None => failures.push(format!(
                    "workload {name}: budget lacks Tcl counter {field} — regenerate the budgets"
                )),
            }
        }
        for (field, got) in &wire {
            match budget
                .get("wire")
                .and_then(|t| t.get(field))
                .and_then(|v| v.as_u64())
            {
                Some(want) if want == *got => {}
                Some(want) => failures.push(format!(
                    "workload {name}: wire.{field} = {got}, budget says {want}"
                )),
                None => failures.push(format!(
                    "workload {name}: budget lacks wire counter {field} — regenerate the budgets"
                )),
            }
        }
        if let Some(got) = shape {
            if got.orphans != 0 || got.open != 0 {
                failures.push(format!(
                    "workload {name}: span tree is not well formed \
                     ({} orphans, {} still open)",
                    got.orphans, got.open
                ));
            }
            match budget.get("spans").map(SpanShape::from_value) {
                Some(Some(want)) if want == got => {}
                Some(Some(want)) => failures.push(format!(
                    "workload {name}: span-tree shape drifted from budget\n    \
                     budget: {}\n    measured: {}",
                    want.to_json(),
                    got.to_json()
                )),
                Some(None) => failures.push(format!("workload {name}: malformed spans budget")),
                None => failures.push(format!(
                    "workload {name}: budget lacks a spans shape — regenerate the budgets"
                )),
            }
        }
        println!("budget ok: {name} ({iters} iters)");
    }

    if !failures.is_empty() {
        eprintln!("request budgets FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the protocol change is intentional, regenerate with \
             `cargo run -p tk-bench --bin bench -- --write-budgets` and commit BUDGETS.json"
        );
        std::process::exit(1);
    }
    println!("request budgets OK ({path})");
}

/// Runs the trace-instrumented workloads and returns each application's
/// span records, named for the exporters (one Chrome `pid` per app).
fn traced_workloads() -> Vec<(String, Vec<rtk_obs::SpanRecord>)> {
    let mut out = Vec::new();

    // Cross-application sends: the sender's "send" span and the receiver's
    // "send.eval" span share the property serial as their correlation key.
    // The last send has its AppendProperty dropped by a fault plan, so the
    // trace carries a "fault" instant and the deadline wait gives that
    // send span a nonzero virtual-clock duration.
    let (env, apps) = env_with_apps(&["alpha", "beta"]);
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm the handshake atoms
    for app in &apps {
        app.conn().reset_obs();
    }
    for _ in 0..3 {
        sender.eval("send beta {expr 1+1}").unwrap();
    }
    // Learn the request offset of a send's AppendProperty from the
    // protocol trace, then aim a drop fault at the next send's append.
    sender.eval("obs trace on").unwrap();
    let s0 = sender.conn().sequence();
    sender.eval("send beta {expr 1+1}").unwrap();
    let append_off = sender
        .conn()
        .with_obs(|o| {
            o.trace
                .iter()
                .find(|e| e.seq > s0 && e.kind == RequestKind::ChangeProperty)
                .map(|e| e.seq - s0)
        })
        .flatten()
        .expect("a send must issue a ChangeProperty append");
    sender.eval("obs trace off").unwrap();
    let client = sender.conn().client_id().0;
    let doomed = sender.conn().sequence() + append_off;
    env.display()
        .with_server(|s| s.install_fault_plan(FaultPlan::default().drop_at(client, doomed)));
    let timed_out = sender.eval("send -timeout 200 beta {expr 1+1}").is_err();
    assert!(timed_out, "the fault-dropped send must time out");
    env.dispatch_all();
    for app in &apps {
        app.tracer()
            .check_integrity()
            .expect("send workload span tree");
        out.push((app.name(), app.tracer().snapshot()));
    }

    // The buttons workload, augmented with a bound button and a real
    // pointer click so the full event→dispatch→bind→eval→damage→relayout→
    // redraw chain shows up alongside the flush/rasterize batches.
    let (envb, appsb) = env_with_apps(&["buttons"]);
    let app = &appsb[0];
    app.eval("button .target -text Go").unwrap();
    app.eval("pack append . .target {top}").unwrap();
    app.eval("bind .target <ButtonPress-1> {set hits 1}")
        .unwrap();
    app.update();
    app.conn().reset_obs();
    create_display_delete_buttons(app, 5);
    let rec = app.window(".target").unwrap();
    envb.display()
        .move_pointer(rec.x.get() + 5, rec.y.get() + 5);
    envb.display().click(1);
    envb.dispatch_all();
    app.tracer()
        .check_integrity()
        .expect("buttons workload span tree");
    out.push((app.name(), app.tracer().snapshot()));

    out
}

/// Runs the traced suite and writes one of the three export formats.
fn write_trace(path: &str, format: &str) {
    let traces = traced_workloads();
    let total: usize = traces.iter().map(|(_, s)| s.len()).sum();
    let text = match format {
        "chrome" => {
            let t = rtk_obs::span::chrome_trace(&traces);
            assert!(json::is_valid(&t), "chrome trace must be valid JSON");
            t
        }
        "folded" => rtk_obs::span::folded_stacks(&traces),
        _ => rtk_obs::span::virtual_profile(&traces),
    };
    std::fs::write(path, text).expect("write trace file");
    println!(
        "wrote {path} ({total} spans from {} applications, {format} format)",
        traces.len()
    );
}

/// Times `iters` runs of `f`, recording each run into a histogram.
fn measure(iters: u64, mut f: impl FnMut()) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..iters {
        let start = Instant::now();
        f();
        h.record_duration(start.elapsed());
    }
    h
}

fn workload_json(name: &str, iters: u64, h: &Histogram, extra: Option<(&str, String)>) -> String {
    let mut o = json::Object::new();
    o.field_str("name", name);
    o.field_u64("iters", iters);
    o.field_raw("time_ns", &h.to_json());
    if let Some((key, raw)) = extra {
        o.field_raw(key, &raw);
    }
    o.build()
}

/// Checks a measured fleet report against the `fleet` section of the
/// budgets file. Exits non-zero on any drift.
fn check_fleet_budgets(report: &FleetReport, path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run --write-budgets first)"));
    let expected = json::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    let key = format!("fleet{}", report.apps);
    let Some(budget) = expected.get("fleet").and_then(|f| f.get(&key)) else {
        eprintln!(
            "{path}: no \"{key}\" entry in the fleet section — the pinned size is \
             fleet{FLEET_BUDGET_APPS}; regenerate with --write-budgets"
        );
        std::process::exit(1);
    };
    let mut failures = Vec::new();
    for (field, got) in fleet_fields(report) {
        match budget.get(field).and_then(|v| v.as_u64()) {
            Some(want) if want == got => {}
            Some(want) => failures.push(format!("{key}: {field} = {got}, budget says {want}")),
            None => failures.push(format!("{key}: budget lacks field {field}")),
        }
    }
    if !failures.is_empty() {
        eprintln!("fleet budgets FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the latency change is intentional, regenerate with \
             `cargo run -p tk-bench --bin bench -- --write-budgets` and commit BUDGETS.json"
        );
        std::process::exit(1);
    }
    println!("fleet budgets OK ({key} in {path})");
}

/// `--fleet N`: the threaded wire mesh (liveness + ordering + report-only
/// wall-clock latencies) followed by the deterministic fleet (exact
/// virtual-clock percentiles, optionally checked against BUDGETS.json).
fn fleet_mode(napps: usize, check: bool, path: &str) {
    let done = Arc::new(AtomicBool::new(false));
    watchdog("fleet mesh", 570, done.clone());
    let env = TkEnv::new();
    match run_wire_mesh(&env, &MeshConfig::ring(napps, FLEET_MESH_ROUNDS)) {
        Some(mesh) => {
            let l = &mesh.latencies_ns;
            println!(
                "fleet mesh: {} apps x {} rounds, {} sends in {:.2?} \
                 (wall p50 {} / p95 {} / p99 {}, report-only)",
                napps,
                FLEET_MESH_ROUNDS,
                mesh.sends,
                mesh.wall,
                fmt_time(percentile(l, 50.0) as f64 * 1e-9),
                fmt_time(percentile(l, 95.0) as f64 * 1e-9),
                fmt_time(percentile(l, 99.0) as f64 * 1e-9),
            );
        }
        None => println!("fleet mesh: skipped (wire transport disabled via RTK_NO_WIRE)"),
    }
    done.store(true, Ordering::SeqCst);

    let report = measured_fleet(napps);
    println!(
        "fleet deterministic: {} apps, {} sends, send_latency_ms p50 {} / p95 {} / p99 {} \
         (max {}), {} backpressure stalls, {} deadline misses",
        report.apps,
        report.sends,
        report.send_latency_p50_ms,
        report.send_latency_p95_ms,
        report.send_latency_p99_ms,
        report.send_latency_max_ms,
        report.backpressure_stalls,
        report.deadline_misses,
    );
    println!(
        "fleet tail: {} fault-dropped sends errored cleanly at the {}ms timeout",
        report.send_errors,
        tk_bench::fleet::FLEET_FAULT_TIMEOUT_MS,
    );
    if check {
        check_fleet_budgets(&report, path);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--fleet") => {
            let Some(napps) = args.get(1).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("usage: bench -- --fleet N [--check-budgets [BUDGETS.json]]");
                std::process::exit(2);
            };
            let check = args.get(2).map(String::as_str) == Some("--check-budgets");
            let path = args.get(3).map_or("BUDGETS.json", String::as_str);
            fleet_mode(napps, check, path);
            return;
        }
        Some("--write-budgets") => {
            write_budgets(args.get(1).map_or("BUDGETS.json", String::as_str));
            return;
        }
        Some("--check-budgets") => {
            check_budgets(args.get(1).map_or("BUDGETS.json", String::as_str));
            return;
        }
        Some("--trace") => {
            write_trace(args.get(1).map_or("trace.json", String::as_str), "chrome");
            return;
        }
        Some("--trace-folded") => {
            write_trace(args.get(1).map_or("trace.folded", String::as_str), "folded");
            return;
        }
        Some("--trace-vprofile") => {
            write_trace(
                args.get(1).map_or("trace.vprofile", String::as_str),
                "vprofile",
            );
            return;
        }
        _ => {}
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Row 1: simple Tcl command (no X traffic at all).
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    let set_iters = 100_000;
    let h_set = measure(set_iters, || {
        interp.eval("set a 1").unwrap();
    });
    println!(
        "set_a_1:     p50 {}",
        fmt_time(h_set.quantile(0.5) as f64 * 1e-9)
    );

    // Row 2: send an empty command between two applications, with the
    // synthetic round-trip cost the paper's IPC numbers imply.
    let rt_cost = std::time::Duration::from_micros(50);
    let (env_send, apps) = env_with_apps(&["alpha", "beta"]);
    env_send
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm up
    sender.conn().reset_obs();
    let send_iters = 2_000;
    let h_send = measure(send_iters, || {
        sender.eval("send beta {}").unwrap();
    });
    // One extra iteration with the protocol trace ring recording, so the
    // dump carries real trace samples (the timed loop stays untraced).
    sender.eval("obs trace on").unwrap();
    sender.eval("send beta {}").unwrap();
    let send_protocol = sender.conn().obs_json();
    println!(
        "send_empty:  p50 {}",
        fmt_time(h_send.quantile(0.5) as f64 * 1e-9)
    );
    let send_wire = sender.conn().wire_stats();
    if send_wire.active() {
        println!(
            "send_empty wire: {} frames / {} bytes encoded, {} frames / {} bytes decoded, \
             {} flushes, largest frame {} bytes",
            send_wire.frames_encoded,
            send_wire.bytes_encoded,
            send_wire.frames_decoded,
            send_wire.bytes_decoded,
            send_wire.flushes,
            send_wire.frame_bytes.max()
        );
    }

    // Row 3: create, display, delete 50 buttons, with the full
    // observability stack collecting underneath.
    let (env50, apps50) = env_with_apps(&["buttons"]);
    env50
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    app.eval("obs reset").unwrap();
    let button_iters = 20;
    let h_buttons = measure(button_iters, || {
        create_display_delete_buttons(app, 50);
    });
    // Snapshot the counters before the traced extra iteration so the
    // per-iteration arithmetic below stays exact.
    let stats = app.conn().stats();
    app.eval("obs trace on").unwrap();
    create_display_delete_buttons(app, 50);
    let buttons_dump = tk::obs_cmd::dump_json(app);
    println!(
        "buttons_50:  p50 {} ({} requests, {} round trips, {} flushes per iteration)",
        fmt_time(h_buttons.quantile(0.5) as f64 * 1e-9),
        stats.requests / button_iters,
        stats.round_trips / button_iters,
        stats.flushes / button_iters
    );

    // The same workload with the output buffer disabled: every request
    // becomes its own client→server transition, the transport the toolkit
    // had before batching. The ratio of "server trips" (flushes + round
    // trips — each is one blocking transition) is the headline batching
    // win.
    let (env_nb, apps_nb) = env_with_apps(&["buttons"]);
    env_nb
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app_nb = &apps_nb[0];
    app_nb.conn().set_batching(false);
    create_display_delete_buttons(app_nb, 50); // warm caches
    app_nb.eval("obs reset").unwrap();
    let h_unbatched = measure(button_iters, || {
        create_display_delete_buttons(app_nb, 50);
    });
    let stats_nb = app_nb.conn().stats();
    let trips = stats.flushes + stats.round_trips;
    let trips_nb = stats_nb.flushes + stats_nb.round_trips;
    println!(
        "buttons_50 unbatched: p50 {} ({} server trips/iter vs {} batched, {:.1}x)",
        fmt_time(h_unbatched.quantile(0.5) as f64 * 1e-9),
        trips_nb / button_iters,
        trips / button_iters,
        trips_nb as f64 / trips.max(1) as f64
    );

    let mut comparison = json::Object::new();
    for (key, s, h) in [
        ("batched", &stats, &h_buttons),
        ("unbatched", &stats_nb, &h_unbatched),
    ] {
        let mut side = json::Object::new();
        side.field_u64("requests", s.requests);
        side.field_u64("round_trips", s.round_trips);
        side.field_u64("flushes", s.flushes);
        side.field_u64("server_trips", s.flushes + s.round_trips);
        side.field_u64("max_batch", s.max_batch);
        side.field_u64("p50_ns", h.quantile(0.5));
        comparison.field_raw(key, &side.build());
    }

    // The incremental-redraw workloads, each timed in both damage modes;
    // the pixels_drawn ratio is the damage engine's headline number.
    let mut incremental = json::Array::new();
    for (name, setup, run) in incremental_workloads() {
        let mut o = json::Object::new();
        o.field_str("name", name);
        let mut ratio = (0u64, 0u64);
        for (damage, key) in [(true, "damage"), (false, "full")] {
            let (_env, apps) = env_with_apps(&["incr"]);
            let app = &apps[0];
            app.set_damage(damage);
            setup(app);
            run(app); // warm caches
            app.eval("obs reset").unwrap();
            let h = measure(10, || run(app));
            let s = app.conn().stats();
            let mut side = json::Object::new();
            side.field_u64("pixels_drawn", s.pixels_drawn);
            side.field_u64("requests", s.requests);
            side.field_u64("p50_ns", h.quantile(0.5));
            o.field_raw(key, &side.build());
            if damage {
                ratio.0 = s.pixels_drawn;
            } else {
                ratio.1 = s.pixels_drawn;
            }
        }
        println!(
            "{name}: {} pixels damage-narrowed vs {} full ({:.1}x fewer)",
            ratio.0,
            ratio.1,
            ratio.1 as f64 / ratio.0.max(1) as f64
        );
        incremental.push_raw(&o.build());
    }

    // The hot-eval workload in both compile modes: the program cache's
    // headline wall-clock win, alongside the exact parse/hit counters.
    let mut evalhot = json::Object::new();
    let mut eval_p50 = (0u64, 0u64);
    for (enabled, key) in [(true, "compiled"), (false, "direct")] {
        let (_env, apps) = env_with_apps(&["evalhot"]);
        let app = &apps[0];
        app.interp().set_compile(enabled);
        setup_eval_hot(app);
        eval_hot(app, 50); // warm caches
        app.eval("obs reset").unwrap();
        let h = measure(200, || eval_hot(app, 10));
        let mut side = json::Object::new();
        for (name, v) in app.interp().compile_counters() {
            side.field_u64(name.trim_start_matches("tcl."), v);
        }
        side.field_u64("p50_ns", h.quantile(0.5));
        evalhot.field_raw(key, &side.build());
        if enabled {
            eval_p50.0 = h.quantile(0.5);
        } else {
            eval_p50.1 = h.quantile(0.5);
        }
    }
    println!(
        "eval_hot: p50 {} compiled vs {} direct ({:.1}x faster)",
        fmt_time(eval_p50.0 as f64 * 1e-9),
        fmt_time(eval_p50.1 as f64 * 1e-9),
        eval_p50.1 as f64 / eval_p50.0.max(1) as f64
    );

    let mut workloads = json::Array::new();
    workloads.push_raw(&workload_json("set_a_1", set_iters, &h_set, None));
    workloads.push_raw(&workload_json(
        "send_empty",
        send_iters,
        &h_send,
        Some(("protocol", send_protocol)),
    ));
    workloads.push_raw(&workload_json(
        "buttons_50",
        button_iters,
        &h_buttons,
        Some(("obs", buttons_dump)),
    ));
    workloads.push_raw(&workload_json(
        "buttons_50_unbatched",
        button_iters,
        &h_unbatched,
        Some(("batching_comparison", comparison.build())),
    ));

    let mut root = json::Object::new();
    root.field_str("source", "Table II workloads, Ousterhout USENIX 1991");
    root.field_str("regenerate", "cargo run -p tk-bench --release --bin bench");
    root.field_u64("round_trip_cost_us", rt_cost.as_micros() as u64);
    root.field_raw("workloads", &workloads.build());
    root.field_raw("incremental_redraw", &incremental.build());
    root.field_raw("eval_hot", &evalhot.build());
    let text = root.build();
    assert!(json::is_valid(&text), "bench produced invalid JSON");

    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
