//! `bench` — replays the Table II workloads with the observability core
//! switched on and writes a machine-readable `BENCH_obs.json`: per-workload
//! latency percentiles (from `rtk_obs::Histogram`), protocol request and
//! round-trip counts per kind, and resource-cache hit rates.
//!
//! Run with: `cargo run -p tk-bench --release --bin bench -- [output.json]`
//! (the output path defaults to `BENCH_obs.json` in the current directory).

use std::time::Instant;

use rtk_obs::{json, Histogram};
use tk_bench::{create_display_delete_buttons, env_with_apps, fmt_time};

/// Times `iters` runs of `f`, recording each run into a histogram.
fn measure(iters: u64, mut f: impl FnMut()) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..iters {
        let start = Instant::now();
        f();
        h.record_duration(start.elapsed());
    }
    h
}

fn workload_json(name: &str, iters: u64, h: &Histogram, extra: Option<(&str, String)>) -> String {
    let mut o = json::Object::new();
    o.field_str("name", name);
    o.field_u64("iters", iters);
    o.field_raw("time_ns", &h.to_json());
    if let Some((key, raw)) = extra {
        o.field_raw(key, &raw);
    }
    o.build()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Row 1: simple Tcl command (no X traffic at all).
    let interp = tcl::Interp::new();
    interp.eval("set a 0").unwrap();
    let set_iters = 100_000;
    let h_set = measure(set_iters, || {
        interp.eval("set a 1").unwrap();
    });
    println!(
        "set_a_1:     p50 {}",
        fmt_time(h_set.quantile(0.5) as f64 * 1e-9)
    );

    // Row 2: send an empty command between two applications, with the
    // synthetic round-trip cost the paper's IPC numbers imply.
    let rt_cost = std::time::Duration::from_micros(50);
    let (env_send, apps) = env_with_apps(&["alpha", "beta"]);
    env_send
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let sender = &apps[0];
    sender.eval("send beta {}").unwrap(); // warm up
    sender.conn().reset_obs();
    let send_iters = 2_000;
    let h_send = measure(send_iters, || {
        sender.eval("send beta {}").unwrap();
    });
    let send_protocol = sender.conn().obs_json();
    println!(
        "send_empty:  p50 {}",
        fmt_time(h_send.quantile(0.5) as f64 * 1e-9)
    );

    // Row 3: create, display, delete 50 buttons, with the full
    // observability stack collecting underneath.
    let (env50, apps50) = env_with_apps(&["buttons"]);
    env50
        .display()
        .with_server(|s| s.set_round_trip_cost(rt_cost));
    let app = &apps50[0];
    create_display_delete_buttons(app, 50); // warm caches
    app.eval("obs reset").unwrap();
    let button_iters = 20;
    let h_buttons = measure(button_iters, || {
        create_display_delete_buttons(app, 50);
    });
    let buttons_dump = tk::obs_cmd::dump_json(app);
    let stats = app.conn().stats();
    println!(
        "buttons_50:  p50 {} ({} requests, {} round trips per iteration)",
        fmt_time(h_buttons.quantile(0.5) as f64 * 1e-9),
        stats.requests / button_iters,
        stats.round_trips / button_iters
    );

    let mut workloads = json::Array::new();
    workloads.push_raw(&workload_json("set_a_1", set_iters, &h_set, None));
    workloads.push_raw(&workload_json(
        "send_empty",
        send_iters,
        &h_send,
        Some(("protocol", send_protocol)),
    ));
    workloads.push_raw(&workload_json(
        "buttons_50",
        button_iters,
        &h_buttons,
        Some(("obs", buttons_dump)),
    ));

    let mut root = json::Object::new();
    root.field_str("source", "Table II workloads, Ousterhout USENIX 1991");
    root.field_str("regenerate", "cargo run -p tk-bench --release --bin bench");
    root.field_u64("round_trip_cost_us", rt_cost.as_micros() as u64);
    root.field_raw("workloads", &workloads.build());
    let text = root.build();
    assert!(json::is_valid(&text), "bench produced invalid JSON");

    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
