//! Selection support (Section 3.6).
//!
//! Tk hides the ICCCM selection protocols: widgets (or Tcl scripts)
//! register a *selection handler* that produces the selection's value;
//! claiming the selection notifies the previous owner through the server;
//! `selection get` retrieves the selection from whichever application owns
//! it, converting through `SelectionRequest`/`SelectionNotify` property
//! traffic exactly as the ICCCM prescribes.

use std::collections::HashMap;
use std::rc::Rc;

use tcl::{wrong_args, Exception, TclResult};
use xsim::Event;

use crate::app::TkApp;
use crate::cache::xerr;

/// A widget-provided (Rust-level) selection handler.
pub struct NativeHandler {
    /// Produces the selection value.
    pub fetch: Rc<dyn Fn(&TkApp) -> String>,
    /// Called when the selection is lost to another owner.
    pub lost: Rc<dyn Fn(&TkApp)>,
}

/// Per-application selection state.
#[derive(Default)]
pub struct SelectionState {
    /// Tcl-level handlers, by window path.
    handlers: HashMap<String, String>,
    /// Widget-level handlers, by window path.
    native: HashMap<String, NativeHandler>,
    /// The path that currently owns the PRIMARY selection (in this app).
    owner: Option<String>,
    /// Result slot for an in-progress `selection get`.
    pending: Option<Result<String, String>>,
}

/// Registers the `selection` command.
pub fn register(app: &TkApp) {
    app.register_command("selection", cmd_selection);
}

fn cmd_selection(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("selection option ?arg ...?"));
    }
    match argv[1].as_str() {
        "get" => {
            if argv.len() != 2 {
                return Err(wrong_args("selection get"));
            }
            retrieve(app)
        }
        "own" => match argv.len() {
            2 => Ok(app
                .inner
                .selection
                .borrow()
                .owner
                .clone()
                .unwrap_or_default()),
            3 => {
                let path = argv[2].clone();
                app.require_window(&path)?;
                claim(app, &path, None);
                Ok(String::new())
            }
            _ => Err(wrong_args("selection own ?window?")),
        },
        "handle" => {
            if argv.len() != 4 {
                return Err(wrong_args("selection handle window command"));
            }
            app.require_window(&argv[2])?;
            app.inner
                .selection
                .borrow_mut()
                .handlers
                .insert(argv[2].clone(), argv[3].clone());
            Ok(String::new())
        }
        "clear" => {
            let primary = app.conn().intern_atom("PRIMARY").map_err(xerr)?;
            app.conn().set_selection_owner(primary, xsim::Xid::NONE);
            app.inner.selection.borrow_mut().owner = None;
            Ok(String::new())
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be clear, get, handle, or own"
        ))),
    }
}

/// Claims the PRIMARY selection for `path`, optionally installing a
/// widget-level handler. Widgets call this when the user selects in them.
pub fn claim(app: &TkApp, path: &str, native: Option<NativeHandler>) {
    let Some(rec) = app.window(path) else { return };
    // Claiming is best-effort: on a protocol error the previous owner
    // simply keeps the server-side selection.
    let Ok(primary) = app.conn().intern_atom("PRIMARY") else {
        return;
    };
    app.conn().set_selection_owner(primary, rec.xid);
    let mut st = app.inner.selection.borrow_mut();
    st.owner = Some(path.to_string());
    if let Some(h) = native {
        st.native.insert(path.to_string(), h);
    }
}

/// Retrieves the PRIMARY selection as a string, pumping the environment
/// until the owner (possibly another application) answers.
pub fn retrieve(app: &TkApp) -> TclResult {
    let conn = app.conn();
    let primary = conn.intern_atom("PRIMARY").map_err(xerr)?;
    let string = conn.intern_atom("STRING").map_err(xerr)?;
    let prop = conn.intern_atom("TK_SELECTION").map_err(xerr)?;
    app.inner.selection.borrow_mut().pending = None;
    conn.convert_selection(app.inner.comm, primary, string, prop);
    // Pump all applications until the notify lands; each round makes
    // progress because the owner is in-process.
    for _ in 0..1000 {
        if let Some(result) = app.inner.selection.borrow_mut().pending.take() {
            return result.map_err(Exception::error);
        }
        if !app.env().dispatch_all() {
            // Ensure our own queue was drained even with no global work.
            app.process_pending();
            if let Some(result) = app.inner.selection.borrow_mut().pending.take() {
                return result.map_err(Exception::error);
            }
            break;
        }
    }
    Err(Exception::error(
        "selection owner didn't respond (PRIMARY selection may not exist)",
    ))
}

/// Produces the selection value for a request landing on `path`.
fn fetch_value(app: &TkApp, path: &str) -> Option<String> {
    // Widget handler first, then Tcl handler (Tcl handlers are called with
    // the byte range arguments Tk supplies: offset and max bytes).
    let native = {
        let st = app.inner.selection.borrow();
        st.native.get(path).map(|h| h.fetch.clone())
    };
    if let Some(fetch) = native {
        return Some(fetch(app));
    }
    let script = {
        let st = app.inner.selection.borrow();
        st.handlers.get(path).cloned()
    };
    if let Some(script) = script {
        let call = format!("{script} 0 1000000");
        return app.interp().eval(&call).ok();
    }
    None
}

/// Handles selection protocol events for this application.
pub fn handle_event(app: &TkApp, ev: &Event) {
    match ev {
        Event::SelectionRequest {
            owner,
            requestor,
            selection,
            target,
            property,
            ..
        } => {
            let conn = app.conn();
            let value = app.path_of(*owner).and_then(|path| fetch_value(app, &path));
            match value {
                Some(v) => {
                    conn.change_property(*requestor, *property, &v);
                    conn.send_selection_notify(*requestor, *selection, *target, *property);
                }
                None => {
                    conn.send_selection_notify(*requestor, *selection, *target, xsim::Atom::NONE);
                }
            }
        }
        Event::SelectionClear { window, .. } => {
            let path = app.path_of(*window);
            let mut st = app.inner.selection.borrow_mut();
            if st.owner.as_deref() == path.as_deref() {
                st.owner = None;
            }
            let lost = path.and_then(|p| st.native.get(&p).map(|h| h.lost.clone()));
            drop(st);
            if let Some(lost) = lost {
                lost(app);
            }
        }
        Event::SelectionNotify { property, .. } => {
            let mut result: Result<String, String> =
                Err("PRIMARY selection doesn't exist or form \"STRING\" not defined".into());
            if !matches!(*property, xsim::Atom::NONE) {
                if let Ok(Some(v)) = app.conn().get_property(app.inner.comm, *property) {
                    app.conn().delete_property(app.inner.comm, *property);
                    result = Ok(v);
                }
            }
            app.inner.selection.borrow_mut().pending = Some(result);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn tcl_handler_services_selection_get() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f").unwrap();
        app.eval("proc give {offset max} {return {the goods}}")
            .unwrap();
        app.eval("selection handle .f give").unwrap();
        app.eval("selection own .f").unwrap();
        assert_eq!(app.eval("selection get").unwrap(), "the goods");
        assert_eq!(app.eval("selection own").unwrap(), ".f");
    }

    #[test]
    fn selection_get_without_owner_errors() {
        let env = TkEnv::new();
        let app = env.app("t");
        let e = app.eval("selection get").unwrap_err();
        assert!(
            e.msg.contains("selection") || e.msg.contains("PRIMARY"),
            "{}",
            e.msg
        );
    }

    #[test]
    fn cross_application_selection() {
        let env = TkEnv::new();
        let owner = env.app("owner");
        let reader = env.app("reader");
        owner.eval("frame .f").unwrap();
        owner
            .eval("proc give {offset max} {return {shared text}}")
            .unwrap();
        owner.eval("selection handle .f give").unwrap();
        owner.eval("selection own .f").unwrap();
        env.dispatch_all();
        assert_eq!(reader.eval("selection get").unwrap(), "shared text");
    }

    #[test]
    fn new_owner_clears_old() {
        let env = TkEnv::new();
        let a = env.app("a");
        let b = env.app("b");
        a.eval("frame .f; selection handle .f {give}; selection own .f")
            .unwrap();
        env.dispatch_all();
        b.eval("frame .g; selection handle .g {give2}; selection own .g")
            .unwrap();
        env.dispatch_all();
        assert_eq!(a.eval("selection own").unwrap(), "");
        assert_eq!(b.eval("selection own").unwrap(), ".g");
    }

    #[test]
    fn selection_clear_releases() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f; selection handle .f give; selection own .f")
            .unwrap();
        app.eval("selection clear").unwrap();
        env.dispatch_all();
        assert_eq!(app.eval("selection own").unwrap(), "");
        assert!(app.eval("selection get").is_err());
    }

    #[test]
    fn handler_error_refuses_conversion() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f").unwrap();
        app.eval("proc bad {offset max} {error nope}").unwrap();
        app.eval("selection handle .f bad").unwrap();
        app.eval("selection own .f").unwrap();
        assert!(app.eval("selection get").is_err());
    }
}
