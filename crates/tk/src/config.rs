//! Widget configuration options (Section 4).
//!
//! Every widget has a table of option specs: the command-line switch
//! (`-background`), the option-database name and class (`background`,
//! `Background`), and a default. At creation, unspecified options are
//! looked up in the option database and then fall back to the default —
//! exactly the paper's description. `configure` reads or rewrites any
//! option at any time.

use std::cell::RefCell;
use std::collections::HashMap;

use tcl::{Exception, TclResult};

use crate::app::TkApp;
use crate::draw::{parse_geometry, parse_pixels, Anchor, Relief};

/// How an option's value is validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptKind {
    /// Uninterpreted string (commands, text, variables).
    Str,
    /// Integer.
    Int,
    /// Screen distance in pixels.
    Pixels,
    /// A color name.
    Color,
    /// A font name.
    Font,
    /// A cursor name (or empty).
    Cursor,
    /// A relief name.
    Relief,
    /// An anchor position.
    Anchor,
    /// `WIDTHxHEIGHT`.
    Geometry,
    /// A boolean word.
    Boolean,
    /// `-orient`: `horizontal` or `vertical`.
    Orient,
}

/// One option's specification.
pub struct OptSpec {
    /// The switch, e.g. `-background`.
    pub name: &'static str,
    /// Option-database name (`background`), or the target switch when this
    /// spec is a synonym (e.g. `-bg` → `-background`).
    pub db_name: &'static str,
    /// Option-database class (`Background`); empty for synonyms.
    pub db_class: &'static str,
    /// Default when neither the command line nor the database provides one.
    pub default: &'static str,
    /// Validation kind.
    pub kind: OptKind,
    /// True when this entry is a synonym for the option named by `db_name`.
    pub synonym: bool,
}

/// Shorthand constructors used by widget option tables.
pub const fn opt(
    name: &'static str,
    db_name: &'static str,
    db_class: &'static str,
    default: &'static str,
    kind: OptKind,
) -> OptSpec {
    OptSpec {
        name,
        db_name,
        db_class,
        default,
        kind,
        synonym: false,
    }
}

/// A synonym spec: `-bg` resolving to `-background`.
pub const fn synonym(name: &'static str, target: &'static str) -> OptSpec {
    OptSpec {
        name,
        db_name: target,
        db_class: "",
        default: "",
        kind: OptKind::Str,
        synonym: true,
    }
}

/// The current option values of one widget.
pub struct ConfigStore {
    specs: &'static [OptSpec],
    values: RefCell<HashMap<&'static str, String>>,
}

impl ConfigStore {
    /// Creates a store for the given spec table (values unset until
    /// [`ConfigStore::init`]).
    pub fn new(specs: &'static [OptSpec]) -> ConfigStore {
        ConfigStore {
            specs,
            values: RefCell::new(HashMap::new()),
        }
    }

    /// Fills every non-synonym option from the option database or its
    /// default ("for unspecified options, the widget checks in the option
    /// database; if none is found then it uses a default").
    pub fn init(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        for spec in self.specs.iter().filter(|s| !s.synonym) {
            let from_db = app.option_get(path, spec.db_name, spec.db_class);
            let value = from_db.unwrap_or_else(|| spec.default.to_string());
            self.apply(app, spec, &value)?;
        }
        Ok(())
    }

    /// Resolves an option switch, supporting synonyms and unique
    /// abbreviations (`-bg`, `-backgr`).
    pub fn resolve(&self, name: &str) -> Result<&'static OptSpec, Exception> {
        // Exact match first.
        if let Some(spec) = self.specs.iter().find(|s| s.name == name) {
            return if spec.synonym {
                self.resolve(spec.db_name)
            } else {
                Ok(spec)
            };
        }
        // Unique-prefix abbreviation.
        let matches: Vec<&'static OptSpec> = self
            .specs
            .iter()
            .filter(|s| s.name.starts_with(name))
            .collect();
        match matches.len() {
            1 => {
                let spec = matches[0];
                if spec.synonym {
                    self.resolve(spec.db_name)
                } else {
                    Ok(spec)
                }
            }
            0 => Err(Exception::error(format!("unknown option \"{name}\""))),
            _ => Err(Exception::error(format!("ambiguous option \"{name}\""))),
        }
    }

    /// Validates and stores one option value.
    fn apply(&self, app: &TkApp, spec: &'static OptSpec, value: &str) -> Result<(), Exception> {
        match spec.kind {
            OptKind::Str => {}
            OptKind::Int => {
                value.trim().parse::<i64>().map_err(|_| {
                    Exception::error(format!("expected integer but got \"{value}\""))
                })?;
            }
            OptKind::Pixels => {
                parse_pixels(value)?;
            }
            OptKind::Color => {
                if !value.is_empty() {
                    xsim::lookup_color(value).ok_or_else(|| {
                        Exception::error(format!("unknown color name \"{value}\""))
                    })?;
                }
            }
            OptKind::Font => {
                app.cache().font(app.conn(), value)?;
            }
            OptKind::Cursor => {
                if !value.is_empty() {
                    app.cache().cursor(app.conn(), value)?;
                }
            }
            OptKind::Relief => {
                Relief::parse(value)?;
            }
            OptKind::Anchor => {
                Anchor::parse(value)?;
            }
            OptKind::Geometry => {
                parse_geometry(value)?;
            }
            OptKind::Boolean => {
                parse_boolean(value)?;
            }
            OptKind::Orient => {
                if !matches!(value, "horizontal" | "vertical") {
                    return Err(Exception::error(format!(
                        "bad orientation \"{value}\": must be vertical or horizontal"
                    )));
                }
            }
        }
        self.values
            .borrow_mut()
            .insert(spec.name, value.to_string());
        Ok(())
    }

    /// Applies `-option value` pairs (widget creation and `configure`).
    pub fn set_args(&self, app: &TkApp, args: &[String]) -> Result<(), Exception> {
        if args.len() % 2 != 0 {
            return Err(Exception::error(format!(
                "value for \"{}\" missing",
                args.last().map(String::as_str).unwrap_or("")
            )));
        }
        for pair in args.chunks(2) {
            let spec = self.resolve(&pair[0])?;
            self.apply(app, spec, &pair[1])?;
        }
        Ok(())
    }

    /// The current value of an option (empty if unset).
    pub fn get(&self, name: &str) -> String {
        self.values.borrow().get(name).cloned().unwrap_or_default()
    }

    /// Integer accessor (options already validated).
    pub fn get_int(&self, name: &str) -> i64 {
        self.get(name).trim().parse().unwrap_or(0)
    }

    /// Pixel-distance accessor.
    pub fn get_pixels(&self, name: &str) -> i64 {
        parse_pixels(&self.get(name)).unwrap_or(0)
    }

    /// Boolean accessor.
    pub fn get_bool(&self, name: &str) -> bool {
        parse_boolean(&self.get(name)).unwrap_or(false)
    }

    /// Relief accessor.
    pub fn get_relief(&self, name: &str) -> Relief {
        Relief::parse(&self.get(name)).unwrap_or_default()
    }

    /// Anchor accessor.
    pub fn get_anchor(&self, name: &str) -> Anchor {
        Anchor::parse(&self.get(name)).unwrap_or_default()
    }

    /// Formats `configure` query output: with `name`, one spec line
    /// `{-switch dbName dbClass default current}`; without, all of them.
    pub fn info(&self, name: Option<&str>) -> TclResult {
        let line = |spec: &'static OptSpec| -> String {
            if spec.synonym {
                tcl::format_list(&[spec.name, spec.db_name])
            } else {
                tcl::format_list(&[
                    spec.name,
                    spec.db_name,
                    spec.db_class,
                    spec.default,
                    &self.get(spec.name),
                ])
            }
        };
        match name {
            Some(n) => {
                let spec = self.resolve(n)?;
                Ok(line(spec))
            }
            None => {
                let lines: Vec<String> = self.specs.iter().map(line).collect();
                Ok(tcl::format_list(&lines))
            }
        }
    }
}

/// Parses a Tcl boolean word.
pub fn parse_boolean(s: &str) -> Result<bool, Exception> {
    match s.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" | "t" | "y" => Ok(true),
        "0" | "false" | "no" | "off" | "f" | "n" => Ok(false),
        _ => Err(Exception::error(format!(
            "expected boolean value but got \"{s}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TkEnv;

    static SPECS: &[OptSpec] = &[
        opt(
            "-background",
            "background",
            "Background",
            "gray",
            OptKind::Color,
        ),
        synonym("-bg", "-background"),
        opt(
            "-borderwidth",
            "borderWidth",
            "BorderWidth",
            "2",
            OptKind::Pixels,
        ),
        opt("-text", "text", "Text", "", OptKind::Str),
        opt("-relief", "relief", "Relief", "flat", OptKind::Relief),
    ];

    fn setup() -> (TkEnv, TkApp, ConfigStore) {
        let env = TkEnv::new();
        let app = env.app("t");
        let store = ConfigStore::new(SPECS);
        (env, app, store)
    }

    #[test]
    fn init_uses_defaults() {
        let (_e, app, store) = setup();
        store.init(&app, ".w").unwrap();
        assert_eq!(store.get("-background"), "gray");
        assert_eq!(store.get_pixels("-borderwidth"), 2);
    }

    #[test]
    fn init_prefers_option_database() {
        let (_e, app, store) = setup();
        app.inner.options.borrow_mut().add("*background", "red", 60);
        store.init(&app, ".w").unwrap();
        assert_eq!(store.get("-background"), "red");
    }

    #[test]
    fn synonym_and_abbreviation_resolve() {
        let (_e, app, store) = setup();
        store.init(&app, ".w").unwrap();
        store
            .set_args(&app, &["-bg".into(), "blue".into()])
            .unwrap();
        assert_eq!(store.get("-background"), "blue");
        store
            .set_args(&app, &["-rel".into(), "raised".into()])
            .unwrap();
        assert_eq!(store.get("-relief"), "raised");
    }

    #[test]
    fn ambiguous_abbreviation_rejected() {
        let (_e, app, store) = setup();
        store.init(&app, ".w").unwrap();
        // "-b" matches -background, -bg, -borderwidth.
        assert!(store.set_args(&app, &["-b".into(), "x".into()]).is_err());
    }

    #[test]
    fn validation_errors() {
        let (_e, app, store) = setup();
        store.init(&app, ".w").unwrap();
        assert!(store
            .set_args(&app, &["-background".into(), "nocolor".into()])
            .is_err());
        assert!(store
            .set_args(&app, &["-borderwidth".into(), "abc".into()])
            .is_err());
        assert!(store
            .set_args(&app, &["-relief".into(), "soggy".into()])
            .is_err());
        assert!(store
            .set_args(&app, &["-nosuch".into(), "x".into()])
            .is_err());
        assert!(store.set_args(&app, &["-text".into()]).is_err());
    }

    #[test]
    fn info_lines() {
        let (_e, app, store) = setup();
        store.init(&app, ".w").unwrap();
        let one = store.info(Some("-background")).unwrap();
        assert_eq!(one, "-background background Background gray gray");
        let all = store.info(None).unwrap();
        assert!(all.contains("-borderwidth"));
        let syn = store.info(None).unwrap();
        assert!(syn.contains("{-bg -background}"));
    }

    #[test]
    fn booleans() {
        assert!(parse_boolean("yes").unwrap());
        assert!(!parse_boolean("Off").unwrap());
        assert!(parse_boolean("maybe").is_err());
    }
}
