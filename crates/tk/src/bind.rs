//! Event bindings (Section 3.2, Figure 7).
//!
//! The `bind` command attaches Tcl scripts to event *sequences* on windows
//! (or widget classes). Sequences are one or more patterns: `<Enter>`,
//! `a`, `<Escape>q`, `<Double-Button-1>`, `<Control-Key-w>`. Before a
//! bound script runs, `%` sequences are replaced with event fields (`%x`,
//! `%y`, `%W`, `%K`, `%A`, ...).

use std::collections::{HashMap, VecDeque};

use tcl::Exception;
use xsim::event::{state, Event};

/// The kind of X event a pattern matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    ButtonPress,
    ButtonRelease,
    KeyPress,
    KeyRelease,
    Enter,
    Leave,
    Motion,
    Expose,
    Configure,
    Destroy,
    Map,
    Unmap,
    FocusIn,
    FocusOut,
    Property,
}

impl Kind {
    /// The `%T` name of this event type.
    pub fn name(self) -> &'static str {
        match self {
            Kind::ButtonPress => "ButtonPress",
            Kind::ButtonRelease => "ButtonRelease",
            Kind::KeyPress => "KeyPress",
            Kind::KeyRelease => "KeyRelease",
            Kind::Enter => "EnterNotify",
            Kind::Leave => "LeaveNotify",
            Kind::Motion => "MotionNotify",
            Kind::Expose => "Expose",
            Kind::Configure => "ConfigureNotify",
            Kind::Destroy => "DestroyNotify",
            Kind::Map => "MapNotify",
            Kind::Unmap => "UnmapNotify",
            Kind::FocusIn => "FocusIn",
            Kind::FocusOut => "FocusOut",
            Kind::Property => "PropertyNotify",
        }
    }
}

/// A normalized view of an X event, used for binding matches and `%`
/// substitution.
#[derive(Debug, Clone)]
pub struct EventInfo {
    pub kind: Kind,
    /// Button number or keysym name.
    pub detail: String,
    /// The ASCII character for key events (`%A`).
    pub ch: Option<char>,
    pub x: i32,
    pub y: i32,
    pub x_root: i32,
    pub y_root: i32,
    pub state: u32,
    pub time: u64,
    pub width: u32,
    pub height: u32,
}

impl EventInfo {
    /// Extracts binding-relevant information from an event, if the event
    /// type participates in bindings.
    pub fn from_event(ev: &Event) -> Option<EventInfo> {
        let blank = EventInfo {
            kind: Kind::Expose,
            detail: String::new(),
            ch: None,
            x: 0,
            y: 0,
            x_root: 0,
            y_root: 0,
            state: 0,
            time: 0,
            width: 0,
            height: 0,
        };
        Some(match ev {
            Event::ButtonPress {
                button,
                x,
                y,
                x_root,
                y_root,
                state,
                time,
                ..
            } => EventInfo {
                kind: Kind::ButtonPress,
                detail: button.to_string(),
                x: *x,
                y: *y,
                x_root: *x_root,
                y_root: *y_root,
                state: *state,
                time: *time,
                ..blank
            },
            Event::ButtonRelease {
                button,
                x,
                y,
                x_root,
                y_root,
                state,
                time,
                ..
            } => EventInfo {
                kind: Kind::ButtonRelease,
                detail: button.to_string(),
                x: *x,
                y: *y,
                x_root: *x_root,
                y_root: *y_root,
                state: *state,
                time: *time,
                ..blank
            },
            Event::KeyPress {
                keysym,
                x,
                y,
                state,
                time,
                ..
            } => EventInfo {
                kind: Kind::KeyPress,
                detail: keysym.name.clone(),
                ch: keysym.ch,
                x: *x,
                y: *y,
                state: *state,
                time: *time,
                ..blank
            },
            Event::KeyRelease {
                keysym,
                x,
                y,
                state,
                time,
                ..
            } => EventInfo {
                kind: Kind::KeyRelease,
                detail: keysym.name.clone(),
                ch: keysym.ch,
                x: *x,
                y: *y,
                state: *state,
                time: *time,
                ..blank
            },
            Event::EnterNotify {
                x, y, state, time, ..
            } => EventInfo {
                kind: Kind::Enter,
                x: *x,
                y: *y,
                state: *state,
                time: *time,
                ..blank
            },
            Event::LeaveNotify {
                x, y, state, time, ..
            } => EventInfo {
                kind: Kind::Leave,
                x: *x,
                y: *y,
                state: *state,
                time: *time,
                ..blank
            },
            Event::MotionNotify {
                x,
                y,
                x_root,
                y_root,
                state,
                time,
                ..
            } => EventInfo {
                kind: Kind::Motion,
                x: *x,
                y: *y,
                x_root: *x_root,
                y_root: *y_root,
                state: *state,
                time: *time,
                ..blank
            },
            Event::Expose {
                x,
                y,
                width,
                height,
                ..
            } => EventInfo {
                kind: Kind::Expose,
                x: *x,
                y: *y,
                width: *width,
                height: *height,
                ..blank
            },
            Event::ConfigureNotify {
                x,
                y,
                width,
                height,
                ..
            } => EventInfo {
                kind: Kind::Configure,
                x: *x,
                y: *y,
                width: *width,
                height: *height,
                ..blank
            },
            Event::DestroyNotify { .. } => EventInfo {
                kind: Kind::Destroy,
                ..blank
            },
            Event::MapNotify { .. } => EventInfo {
                kind: Kind::Map,
                ..blank
            },
            Event::UnmapNotify { .. } => EventInfo {
                kind: Kind::Unmap,
                ..blank
            },
            Event::FocusIn { .. } => EventInfo {
                kind: Kind::FocusIn,
                ..blank
            },
            Event::FocusOut { .. } => EventInfo {
                kind: Kind::FocusOut,
                ..blank
            },
            Event::PropertyNotify { time, .. } => EventInfo {
                kind: Kind::Property,
                time: *time,
                ..blank
            },
            _ => return None,
        })
    }

    /// A deterministic `<Kind-detail>` descriptor for this event — the
    /// label the span tracer records on `dispatch`/`bind` spans (never
    /// includes coordinates or timestamps, so span details are stable
    /// run to run).
    pub fn descriptor(&self) -> String {
        if self.detail.is_empty() {
            format!("<{}>", self.kind.name())
        } else {
            format!("<{}-{}>", self.kind.name(), self.detail)
        }
    }
}

/// One pattern within a binding sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    pub kind: Kind,
    /// Required button number or keysym (empty = any).
    pub detail: String,
    /// Modifier bits that must be present in the event state.
    pub modifiers: u32,
    /// Repeat count: 1, 2 (`Double-`), or 3 (`Triple-`).
    pub count: u8,
}

/// A full binding sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence(pub Vec<Pattern>);

/// Maximum time between repeats/sequence elements (virtual milliseconds).
const SEQUENCE_TIMEOUT: u64 = 500;

/// Parses an event-sequence specification.
pub fn parse_sequence(spec: &str) -> Result<Sequence, Exception> {
    let mut patterns = Vec::new();
    let chars: Vec<char> = spec.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '<' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '>')
                .ok_or_else(|| Exception::error(format!("missing > in binding \"{spec}\"")))?
                + i;
            let inner: String = chars[i + 1..close].iter().collect();
            patterns.push(parse_bracketed(&inner, spec)?);
            i = close + 1;
        } else {
            // A bare character is shorthand for a KeyPress of that key.
            let c = chars[i];
            patterns.push(Pattern {
                kind: Kind::KeyPress,
                detail: xsim::Keysym::from_char(c).name,
                modifiers: 0,
                count: 1,
            });
            i += 1;
        }
    }
    if patterns.is_empty() {
        return Err(Exception::error(format!("empty binding \"{spec}\"")));
    }
    Ok(Sequence(patterns))
}

fn parse_bracketed(inner: &str, whole: &str) -> Result<Pattern, Exception> {
    let fields: Vec<&str> = inner.split('-').filter(|f| !f.is_empty()).collect();
    let mut modifiers = 0u32;
    let mut count = 1u8;
    let mut kind: Option<Kind> = None;
    let mut detail = String::new();
    for field in &fields {
        match *field {
            "Control" | "Ctrl" => modifiers |= state::CONTROL,
            "Shift" => modifiers |= state::SHIFT,
            "Lock" => modifiers |= state::LOCK,
            "Meta" | "Alt" | "Mod1" | "M1" | "M" => modifiers |= state::MOD1,
            "Mod2" | "M2" => modifiers |= state::MOD2,
            "Button1" | "B1" => modifiers |= state::BUTTON1,
            "Button2" | "B2" => modifiers |= state::BUTTON2,
            "Button3" | "B3" => modifiers |= state::BUTTON3,
            "Any" => {} // extra modifiers are always tolerated
            "Double" => count = 2,
            "Triple" => count = 3,
            "ButtonPress" | "Button" => kind = Some(Kind::ButtonPress),
            "ButtonRelease" => kind = Some(Kind::ButtonRelease),
            "KeyPress" | "Key" => kind = Some(Kind::KeyPress),
            "KeyRelease" => kind = Some(Kind::KeyRelease),
            "Enter" => kind = Some(Kind::Enter),
            "Leave" => kind = Some(Kind::Leave),
            "Motion" => kind = Some(Kind::Motion),
            "Expose" => kind = Some(Kind::Expose),
            "Configure" => kind = Some(Kind::Configure),
            "Destroy" => kind = Some(Kind::Destroy),
            "Map" => kind = Some(Kind::Map),
            "Unmap" => kind = Some(Kind::Unmap),
            "FocusIn" => kind = Some(Kind::FocusIn),
            "FocusOut" => kind = Some(Kind::FocusOut),
            "Property" => kind = Some(Kind::Property),
            other => {
                // A detail: a button number after Button*, or a keysym.
                if !detail.is_empty() {
                    return Err(Exception::error(format!(
                        "extra detail \"{other}\" in binding \"{whole}\""
                    )));
                }
                match kind {
                    Some(Kind::ButtonPress) | Some(Kind::ButtonRelease) => {
                        if other.parse::<u8>().is_err() {
                            return Err(Exception::error(format!(
                                "bad button number \"{other}\" in binding \"{whole}\""
                            )));
                        }
                        detail = other.to_string();
                    }
                    Some(Kind::KeyPress) | Some(Kind::KeyRelease) => {
                        if !is_keysym_name(other) {
                            return Err(Exception::error(format!(
                                "bad keysym \"{other}\" in binding \"{whole}\""
                            )));
                        }
                        detail = other.to_string();
                    }
                    None => {
                        // `<1>` means ButtonPress-1; `<a>`/`<Escape>` mean
                        // KeyPress with that keysym.
                        if other.parse::<u8>().is_ok() {
                            kind = Some(Kind::ButtonPress);
                        } else if is_keysym_name(other) {
                            kind = Some(Kind::KeyPress);
                        } else {
                            return Err(Exception::error(format!(
                                "bad event type or keysym \"{other}\" in binding \"{whole}\""
                            )));
                        }
                        detail = other.to_string();
                    }
                    Some(k) => {
                        return Err(Exception::error(format!(
                            "detail \"{other}\" not allowed after {} in \"{whole}\"",
                            k.name()
                        )))
                    }
                }
            }
        }
    }
    let kind =
        kind.ok_or_else(|| Exception::error(format!("no event type in binding \"{whole}\"")))?;
    Ok(Pattern {
        kind,
        detail,
        modifiers,
        count,
    })
}

/// The named (multi-character) keysyms the simulation understands.
const NAMED_KEYSYMS: &[&str] = &[
    "space",
    "Escape",
    "Return",
    "Tab",
    "BackSpace",
    "Delete",
    "Linefeed",
    "Up",
    "Down",
    "Left",
    "Right",
    "Home",
    "End",
    "Prior",
    "Next",
    "Insert",
    "F1",
    "F2",
    "F3",
    "F4",
    "F5",
    "F6",
    "F7",
    "F8",
    "F9",
    "F10",
    "F11",
    "F12",
    "period",
    "comma",
    "semicolon",
    "colon",
    "exclam",
    "question",
    "slash",
    "backslash",
    "minus",
    "plus",
    "equal",
    "underscore",
    "less",
    "greater",
    "numbersign",
    "dollar",
    "percent",
    "ampersand",
    "asterisk",
    "parenleft",
    "parenright",
    "bracketleft",
    "bracketright",
    "apostrophe",
    "quotedbl",
    "at",
    "bar",
    "asciitilde",
    "asciicircum",
    "grave",
    "braceleft",
    "braceright",
];

/// Is `s` a keysym this toolkit can deliver (single character or named)?
fn is_keysym_name(s: &str) -> bool {
    s.chars().count() == 1 || NAMED_KEYSYMS.contains(&s)
}

/// Does one pattern match one event occurrence?
fn pattern_matches(p: &Pattern, e: &EventInfo) -> bool {
    if p.kind != e.kind {
        return false;
    }
    if !p.detail.is_empty() && p.detail != e.detail {
        return false;
    }
    // All required modifiers present; extra modifiers tolerated.
    e.state & p.modifiers == p.modifiers
}

/// Specificity of a pattern for conflict resolution.
fn pattern_weight(p: &Pattern) -> u32 {
    let mut w = 0;
    if !p.detail.is_empty() {
        w += 4;
    }
    w += p.modifiers.count_ones();
    w += p.count as u32 * 8;
    w
}

/// One registered binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// The normalized sequence text the binding was created with.
    pub sequence_text: String,
    /// Parsed sequence.
    pub sequence: Sequence,
    /// The script to run (before `%` substitution).
    pub script: String,
}

/// Per-owner binding lists plus per-window event history for sequence and
/// Double/Triple matching.
#[derive(Debug, Default)]
pub struct BindingTable {
    by_owner: HashMap<String, Vec<Binding>>,
    history: HashMap<String, VecDeque<EventInfo>>,
    /// Bindings whose sequences were examined during matching.
    considered: u64,
    /// `match_event` calls that produced a script.
    matched: u64,
}

impl BindingTable {
    /// Creates an empty table.
    pub fn new() -> BindingTable {
        BindingTable::default()
    }

    /// Adds (or replaces) a binding for `owner` (a window path or class).
    pub fn add(&mut self, owner: &str, sequence: &str, script: &str) -> Result<(), Exception> {
        let parsed = parse_sequence(sequence)?;
        let list = self.by_owner.entry(owner.to_string()).or_default();
        if let Some(existing) = list.iter_mut().find(|b| b.sequence_text == sequence) {
            existing.script = script.to_string();
            return Ok(());
        }
        list.push(Binding {
            sequence_text: sequence.to_string(),
            sequence: parsed,
            script: script.to_string(),
        });
        Ok(())
    }

    /// Removes a binding; true if it existed.
    pub fn remove(&mut self, owner: &str, sequence: &str) -> bool {
        match self.by_owner.get_mut(owner) {
            Some(list) => {
                let before = list.len();
                list.retain(|b| b.sequence_text != sequence);
                list.len() != before
            }
            None => false,
        }
    }

    /// The script bound to `sequence` on `owner`.
    pub fn get(&self, owner: &str, sequence: &str) -> Option<&str> {
        self.by_owner
            .get(owner)?
            .iter()
            .find(|b| b.sequence_text == sequence)
            .map(|b| b.script.as_str())
    }

    /// All sequences bound on `owner`.
    pub fn sequences(&self, owner: &str) -> Vec<String> {
        self.by_owner
            .get(owner)
            .map(|l| l.iter().map(|b| b.sequence_text.clone()).collect())
            .unwrap_or_default()
    }

    /// `(considered, matched)`: how many binding sequences were examined
    /// across all `match_event` calls, and how many calls found a script.
    pub fn match_stats(&self) -> (u64, u64) {
        (self.considered, self.matched)
    }

    /// Zeroes the match counters (bindings themselves stay).
    pub fn reset_stats(&mut self) {
        self.considered = 0;
        self.matched = 0;
    }

    /// Drops all bindings and history for a window (on destroy).
    pub fn forget_window(&mut self, path: &str) {
        self.by_owner.remove(path);
        self.history.remove(path);
    }

    /// Feeds an event and finds the best-matching binding script for the
    /// window path (bindings on the path shadow bindings on the class).
    ///
    /// Returns the raw script; the caller performs `%` substitution.
    pub fn match_event(&mut self, path: &str, class: &str, event: &EventInfo) -> Option<String> {
        // Record key/button events in the history for sequence matching.
        if matches!(
            event.kind,
            Kind::KeyPress | Kind::ButtonPress | Kind::KeyRelease | Kind::ButtonRelease
        ) {
            let h = self.history.entry(path.to_string()).or_default();
            h.push_back(event.clone());
            if h.len() > 16 {
                h.pop_front();
            }
        }
        let empty = VecDeque::new();
        let history = self.history.get(path).unwrap_or(&empty);
        for owner in [path, class] {
            let Some(list) = self.by_owner.get(owner) else {
                continue;
            };
            self.considered += list.len() as u64;
            let mut best: Option<(u32, &Binding)> = None;
            for b in list {
                if let Some(weight) = sequence_matches(&b.sequence, event, history) {
                    if best.map(|(w, _)| weight > w).unwrap_or(true) {
                        best = Some((weight, b));
                    }
                }
            }
            if let Some((_, b)) = best {
                self.matched += 1;
                return Some(b.script.clone());
            }
        }
        None
    }
}

/// Checks a full sequence against the current event and history; returns a
/// specificity weight on success.
fn sequence_matches(
    seq: &Sequence,
    event: &EventInfo,
    history: &VecDeque<EventInfo>,
) -> Option<u32> {
    let last = seq.0.last().unwrap();
    if !pattern_matches(last, event) {
        return None;
    }
    // Expand the sequence into individual required occurrences (a Double
    // pattern is two occurrences of the same press).
    let mut required: Vec<&Pattern> = Vec::new();
    for p in &seq.0 {
        for _ in 0..p.count {
            required.push(p);
        }
    }
    // The final occurrence is the current event itself; preceding
    // occurrences must be the most recent history entries (history already
    // includes the current event at the back for key/button events).
    let mut weight = 0;
    for p in &seq.0 {
        weight += pattern_weight(p);
    }
    weight += seq.0.len() as u32 * 16;
    if required.len() == 1 {
        return Some(weight);
    }
    // Only key/button events enter history, so multi-event sequences are
    // only supported for those kinds (as in Tk). Events of kinds the
    // sequence does not mention (e.g. the ButtonRelease between the two
    // presses of a double-click) are ignored, as in Tk.
    let hist: Vec<&EventInfo> = history
        .iter()
        .filter(|e| seq.0.iter().any(|p| p.kind == e.kind))
        .collect();
    if hist.len() < required.len() {
        return None;
    }
    let tail = &hist[hist.len() - required.len()..];
    let mut prev_time = None;
    for (p, e) in required.iter().zip(tail) {
        if !pattern_matches(p, e) {
            return None;
        }
        if let Some(pt) = prev_time {
            if e.time.saturating_sub(pt) > SEQUENCE_TIMEOUT {
                return None;
            }
        }
        prev_time = Some(e.time);
    }
    Some(weight)
}

/// Performs `%` substitution on a bound script (Figure 7: "%x and %y will
/// be replaced with the x- and y-coordinates from the X event").
pub fn percent_substitute(script: &str, event: &EventInfo, path: &str) -> String {
    let mut out = String::with_capacity(script.len());
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('x') => out.push_str(&event.x.to_string()),
            Some('y') => out.push_str(&event.y.to_string()),
            Some('X') => out.push_str(&event.x_root.to_string()),
            Some('Y') => out.push_str(&event.y_root.to_string()),
            Some('W') => out.push_str(path),
            Some('K') => out.push_str(&event.detail),
            Some('A') => match event.ch {
                // The character is list-quoted so that binding scripts can
                // safely embed it in commands.
                Some(ch) => out.push_str(&tcl::format_list(&[ch.to_string()])),
                None => out.push_str("{}"),
            },
            Some('b') => out.push_str(&event.detail),
            Some('s') => out.push_str(&event.state.to_string()),
            Some('t') => out.push_str(&event.time.to_string()),
            Some('T') => out.push_str(event.kind.name()),
            Some('w') => out.push_str(&event.width.to_string()),
            Some('h') => out.push_str(&event.height.to_string()),
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: Kind, detail: &str, state: u32, time: u64) -> EventInfo {
        EventInfo {
            kind,
            detail: detail.to_string(),
            ch: detail.chars().next().filter(|_| detail.len() == 1),
            x: 10,
            y: 20,
            x_root: 110,
            y_root: 120,
            state,
            time,
            width: 0,
            height: 0,
        }
    }

    #[test]
    fn parse_simple_patterns() {
        let s = parse_sequence("<Enter>").unwrap();
        assert_eq!(s.0[0].kind, Kind::Enter);
        let s = parse_sequence("a").unwrap();
        assert_eq!(s.0[0].kind, Kind::KeyPress);
        assert_eq!(s.0[0].detail, "a");
        let s = parse_sequence("<Button-1>").unwrap();
        assert_eq!(s.0[0].kind, Kind::ButtonPress);
        assert_eq!(s.0[0].detail, "1");
        let s = parse_sequence("<1>").unwrap();
        assert_eq!(s.0[0].kind, Kind::ButtonPress);
        assert_eq!(s.0[0].detail, "1");
    }

    #[test]
    fn parse_modifiers_and_double() {
        let s = parse_sequence("<Double-Button-1>").unwrap();
        assert_eq!(s.0[0].count, 2);
        let s = parse_sequence("<Control-Key-w>").unwrap();
        assert_eq!(s.0[0].modifiers, state::CONTROL);
        assert_eq!(s.0[0].detail, "w");
        let s = parse_sequence("<Control-q>").unwrap();
        assert_eq!(s.0[0].kind, Kind::KeyPress);
        assert_eq!(s.0[0].detail, "q");
    }

    #[test]
    fn parse_sequences() {
        let s = parse_sequence("<Escape>q").unwrap();
        assert_eq!(s.0.len(), 2);
        assert_eq!(s.0[0].detail, "Escape");
        assert_eq!(s.0[1].detail, "q");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_sequence("").is_err());
        assert!(parse_sequence("<NoSuchEvent>").is_err());
        assert!(parse_sequence("<Button-notanumber>").is_err());
        assert!(parse_sequence("<Enter").is_err());
    }

    #[test]
    fn simple_binding_matches() {
        let mut t = BindingTable::new();
        t.add(".x", "<Enter>", "print hi").unwrap();
        let got = t.match_event(".x", "Frame", &ev(Kind::Enter, "", 0, 1));
        assert_eq!(got.as_deref(), Some("print hi"));
        assert!(t
            .match_event(".y", "Frame", &ev(Kind::Enter, "", 0, 2))
            .is_none());
    }

    #[test]
    fn key_binding_with_detail() {
        let mut t = BindingTable::new();
        t.add(".x", "a", "typed-a").unwrap();
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::KeyPress, "a", 0, 1)),
            Some("typed-a".into())
        );
        assert!(t
            .match_event(".x", "F", &ev(Kind::KeyPress, "b", 0, 2))
            .is_none());
    }

    #[test]
    fn modifier_requirements() {
        let mut t = BindingTable::new();
        t.add(".x", "<Control-q>", "cq").unwrap();
        assert!(t
            .match_event(".x", "F", &ev(Kind::KeyPress, "q", 0, 1))
            .is_none());
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::KeyPress, "q", state::CONTROL, 2)),
            Some("cq".into())
        );
    }

    #[test]
    fn more_specific_binding_wins() {
        let mut t = BindingTable::new();
        t.add(".x", "<Key>", "anykey").unwrap();
        t.add(".x", "a", "justa").unwrap();
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::KeyPress, "a", 0, 1)),
            Some("justa".into())
        );
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::KeyPress, "z", 0, 2)),
            Some("anykey".into())
        );
    }

    #[test]
    fn window_binding_shadows_class_binding() {
        let mut t = BindingTable::new();
        t.add("Button", "<Enter>", "class").unwrap();
        t.add(".b", "<Enter>", "window").unwrap();
        assert_eq!(
            t.match_event(".b", "Button", &ev(Kind::Enter, "", 0, 1)),
            Some("window".into())
        );
        assert_eq!(
            t.match_event(".other", "Button", &ev(Kind::Enter, "", 0, 2)),
            Some("class".into())
        );
    }

    #[test]
    fn double_click_requires_two_fast_presses() {
        let mut t = BindingTable::new();
        t.add(".x", "<Double-Button-1>", "dbl").unwrap();
        assert!(t
            .match_event(".x", "F", &ev(Kind::ButtonPress, "1", 0, 100))
            .is_none());
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::ButtonPress, "1", 0, 200)),
            Some("dbl".into())
        );
        // Slow second click: no match.
        assert!(t
            .match_event(".x", "F", &ev(Kind::ButtonPress, "1", 0, 2000))
            .is_none());
    }

    #[test]
    fn escape_q_sequence() {
        let mut t = BindingTable::new();
        t.add(".x", "<Escape>q", "seq").unwrap();
        assert!(t
            .match_event(".x", "F", &ev(Kind::KeyPress, "Escape", 0, 1))
            .is_none());
        assert_eq!(
            t.match_event(".x", "F", &ev(Kind::KeyPress, "q", 0, 2)),
            Some("seq".into())
        );
        // q alone (after unrelated key) does not fire.
        t.match_event(".x", "F", &ev(Kind::KeyPress, "x", 0, 3));
        assert!(t
            .match_event(".x", "F", &ev(Kind::KeyPress, "q", 0, 4))
            .is_none());
    }

    #[test]
    fn replace_and_remove_bindings() {
        let mut t = BindingTable::new();
        t.add(".x", "<Enter>", "one").unwrap();
        t.add(".x", "<Enter>", "two").unwrap();
        assert_eq!(t.get(".x", "<Enter>"), Some("two"));
        assert_eq!(t.sequences(".x"), vec!["<Enter>".to_string()]);
        assert!(t.remove(".x", "<Enter>"));
        assert!(!t.remove(".x", "<Enter>"));
        assert!(t.get(".x", "<Enter>").is_none());
    }

    #[test]
    fn percent_substitution() {
        let e = ev(Kind::ButtonPress, "1", 0, 42);
        let s = percent_substitute("print \"mouse at %x %y\"", &e, ".x");
        assert_eq!(s, "print \"mouse at 10 20\"");
        let s = percent_substitute("%W %T %b %s %t %%", &e, ".a.b");
        assert_eq!(s, ".a.b ButtonPress 1 0 42 %");
    }

    #[test]
    fn percent_keysym_and_char() {
        let e = ev(Kind::KeyPress, "a", 0, 1);
        assert_eq!(percent_substitute("%K/%A", &e, ".x"), "a/a");
        let mut e2 = ev(Kind::KeyPress, "space", 0, 1);
        e2.ch = Some(' ');
        assert_eq!(percent_substitute("ins %A", &e2, ".x"), "ins { }");
    }

    #[test]
    fn figure7_bindings_parse() {
        for spec in ["<Enter>", "a", "<Escape>q", "<Double-Button-1>"] {
            assert!(parse_sequence(spec).is_ok(), "{spec}");
        }
    }
}
