//! # tk — a Tcl-based toolkit for the (simulated) X window system
//!
//! A from-scratch Rust reproduction of Tk as described in Ousterhout's
//! "An X11 Toolkit Based on the Tcl Language" (USENIX Winter 1991). The
//! toolkit *intrinsics* (Section 3) and the widget set (Section 4/7) are
//! all scriptable through the embedded Tcl interpreter:
//!
//! * window path names (`.a.b.c`) and classes;
//! * event dispatching: X events, timers, and when-idle handlers, plus the
//!   `bind` command with event sequences and `%` substitution (Figure 7);
//! * resource caches indexed by textual names, with reverse lookup;
//! * geometry management with the *packer* (`pack append . .x {top}`) and
//!   geometry propagation (Figure 8);
//! * the option database (`*Button.background: red`);
//! * ICCCM selection support with Tcl- or widget-level handlers;
//! * focus management;
//! * the widget set: frame, toplevel, label, button, checkbutton,
//!   radiobutton, message, listbox, scrollbar, scale, entry, menu, and
//!   menubutton;
//! * **`send`** (Section 6): remote evaluation of Tcl commands in any
//!   other Tk application on the display.
//!
//! # Examples
//!
//! The paper's Section 4 example, verbatim:
//!
//! ```
//! use tk::TkEnv;
//!
//! let env = TkEnv::new();
//! let app = env.app("demo");
//! app.eval(r#"button .hello -bg Red -text "Hello, world" -command "print Hello!\n""#)
//!     .unwrap();
//! app.eval("pack append . .hello {top}").unwrap();
//! app.update();
//!
//! // The user clicks the button:
//! let rec = app.window(".hello").unwrap();
//! env.display().move_pointer(rec.x.get() + 5, rec.y.get() + 5);
//! env.display().click(1);
//! env.dispatch_all();
//! ```

pub mod app;
pub mod bind;
pub mod cache;
pub mod cmds;
pub mod config;
pub mod draw;
pub mod obs_cmd;
pub mod optiondb;
pub mod pack;
pub mod selection;
pub mod send;
pub mod widget;
pub mod window;

pub use app::{TkApp, TkEnv};
pub use cache::{Border, ResourceCache};
pub use draw::{Anchor, Relief};
pub use window::TkWindow;
