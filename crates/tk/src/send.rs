//! The `send` command (Section 6).
//!
//! `send name command ?arg ...?` evaluates a Tcl command in the named
//! application and returns its result — a remote procedure call between
//! applications on the same display. The machinery follows the paper:
//!
//! * every application registers `name → comm-window` in a property named
//!   `InterpRegistry` on the root window;
//! * a request is transported by appending to a `TkSendCommand` property
//!   on the target's comm window (the target hears the `PropertyNotify`);
//! * the result returns the same way via `TkSendResult` on the sender's
//!   comm window;
//! * while waiting, the sender keeps processing events, so nested and
//!   re-entrant sends work.

use std::collections::HashMap;

use tcl::{wrong_args, Code, Exception, TclResult};
use xsim::{Atom, Event, WindowId, Xid};

use crate::app::TkApp;
use crate::cache::xerr;

/// Per-application send state.
#[derive(Default)]
pub struct SendState {
    next_serial: u64,
    /// Results by serial, filled in by `TkSendResult` property traffic.
    results: HashMap<u64, (i64, String)>,
    /// Interned handshake atoms, warmed in one pipelined batch at
    /// `announce` time so the send path never re-interns per call.
    atoms: HashMap<String, Atom>,
}

/// Looks up a handshake atom in the per-app cache, interning (one round
/// trip, first use only) on a miss. A protocol error on the intern (fault
/// injection, dead connection) surfaces as a Tcl exception.
fn cached_atom(app: &TkApp, name: &str) -> Result<Atom, Exception> {
    if let Some(a) = app.inner.send.borrow().atoms.get(name) {
        return Ok(*a);
    }
    let a = app.conn().intern_atom(name).map_err(xerr)?;
    app.inner
        .send
        .borrow_mut()
        .atoms
        .insert(name.to_string(), a);
    Ok(a)
}

/// Registers the `send` command and `winfo interps` support bits.
pub fn register(app: &TkApp) {
    app.register_command("send", cmd_send);
}

/// Adds this application to the root-window registry, uniquifying its
/// name if necessary (returns the final name).
pub fn announce(app: &TkApp) -> String {
    let conn = app.conn();
    let base = app.name();
    // Warm the handshake atom cache in one pipelined batch: all three
    // interns travel to the server in a single flush. If the handshake
    // fails (fault injection, dead connection) the application keeps its
    // base name and stays unregistered — it still works standalone.
    let reg_cookie = conn.send_intern_atom("InterpRegistry");
    let cmd_cookie = conn.send_intern_atom("TkSendCommand");
    let res_cookie = conn.send_intern_atom("TkSendResult");
    let (Ok(registry), Ok(cmd), Ok(res)) = (
        conn.wait(reg_cookie),
        conn.wait(cmd_cookie),
        conn.wait(res_cookie),
    ) else {
        return base;
    };
    {
        let mut st = app.inner.send.borrow_mut();
        st.atoms.insert("InterpRegistry".into(), registry);
        st.atoms.insert("TkSendCommand".into(), cmd);
        st.atoms.insert("TkSendResult".into(), res);
    }
    let root = conn.root();
    let existing = conn
        .get_property(root, registry)
        .ok()
        .flatten()
        .unwrap_or_default();
    let mut entries = parse_registry(&existing);
    let mut name = base.clone();
    let mut n = 1;
    while entries.iter().any(|(e, _)| *e == name) {
        n += 1;
        name = format!("{base} #{n}");
    }
    entries.push((name.clone(), app.inner.comm));
    conn.change_property(root, registry, &format_registry(&entries));
    *app.inner.name.borrow_mut() = name.clone();
    name
}

/// Removes an application from the registry (on destroy).
pub fn withdraw(app: &TkApp) {
    let conn = app.conn();
    let Ok(registry) = cached_atom(app, "InterpRegistry") else {
        return;
    };
    let root = conn.root();
    let Ok(existing) = conn.get_property(root, registry) else {
        return;
    };
    let existing = existing.unwrap_or_default();
    let name = app.name();
    let entries: Vec<(String, WindowId)> = parse_registry(&existing)
        .into_iter()
        .filter(|(e, _)| *e != name)
        .collect();
    conn.change_property(root, registry, &format_registry(&entries));
}

/// Removes an application from the registry after its connection died.
/// The protocol path is gone, so this edits the registry property directly
/// on the server — the same scrubbing a real Tk performs when it notices a
/// stale entry whose comm window no longer exists.
pub fn withdraw_post_mortem(app: &TkApp) {
    let name = app.name();
    app.env().display().with_server(|s| {
        let registry = s.intern_atom_direct("InterpRegistry");
        let root = s.root();
        let existing = s.get_property(root, registry).unwrap_or_default();
        let entries: Vec<(String, WindowId)> = parse_registry(&existing)
            .into_iter()
            .filter(|(e, _)| *e != name)
            .collect();
        s.change_property(root, registry, format_registry(&entries));
    });
}

/// Names of all registered applications (`winfo interps`).
pub fn interps(app: &TkApp) -> Vec<String> {
    let conn = app.conn();
    let Ok(registry) = cached_atom(app, "InterpRegistry") else {
        return Vec::new();
    };
    let existing = conn
        .get_property(conn.root(), registry)
        .ok()
        .flatten()
        .unwrap_or_default();
    parse_registry(&existing)
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

fn parse_registry(text: &str) -> Vec<(String, WindowId)> {
    let mut out = Vec::new();
    if let Ok(items) = tcl::parse_list(text) {
        for item in items {
            if let Ok(pair) = tcl::parse_list(&item) {
                if pair.len() == 2 {
                    if let Ok(xid) = pair[1].parse::<u32>() {
                        out.push((pair[0].clone(), Xid(xid)));
                    }
                }
            }
        }
    }
    out
}

fn format_registry(entries: &[(String, WindowId)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(n, w)| tcl::format_list(&[n.clone(), w.0.to_string()]))
        .collect();
    tcl::format_list(&items)
}

/// `send name command ?arg ...?`.
fn cmd_send(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("send interpName arg ?arg ...?"));
    }
    let target_name = &argv[1];
    let script = if argv.len() == 3 {
        argv[2].clone()
    } else {
        argv[2..].join(" ")
    };
    // Sending to ourselves is a direct evaluation (as in Tk).
    if *target_name == app.name() {
        return app.interp().eval(&script);
    }
    let conn = app.conn();
    let registry = cached_atom(app, "InterpRegistry")?;
    let existing = conn
        .get_property(conn.root(), registry)
        .map_err(xerr)?
        .unwrap_or_default();
    let target_comm = parse_registry(&existing)
        .into_iter()
        .find(|(n, _)| n == target_name)
        .map(|(_, w)| w)
        .ok_or_else(|| {
            Exception::error(format!("no registered interpreter named \"{target_name}\""))
        })?;

    // Compose and append the request to the target's comm property.
    let serial = {
        let mut st = app.inner.send.borrow_mut();
        st.next_serial += 1;
        st.next_serial
    };
    let request = tcl::format_list(&[serial.to_string(), app.inner.comm.0.to_string(), script]);
    append_to_property(app, target_comm, "TkSendCommand", &request)?;

    // Wait for the reply, processing everyone's events (the paper: the
    // sender waits for the result to come back).
    for _ in 0..10_000 {
        if let Some((code, value)) = app.inner.send.borrow_mut().results.remove(&serial) {
            return if code == 0 {
                Ok(value)
            } else {
                Err(Exception {
                    code: Code::Error,
                    msg: value,
                    trace: vec![format!("invoked from within send to \"{target_name}\"")],
                })
            };
        }
        if !app.env().dispatch_all() {
            app.process_pending();
            if app.inner.send.borrow().results.contains_key(&serial) {
                continue;
            }
            return Err(Exception::error(format!(
                "target interpreter \"{target_name}\" died or did not respond"
            )));
        }
    }
    Err(Exception::error(format!(
        "send to \"{target_name}\" timed out"
    )))
}

/// Appends one line to a property (requests/results queue there until the
/// owner drains them).
fn append_to_property(
    app: &TkApp,
    window: WindowId,
    atom_name: &str,
    line: &str,
) -> Result<(), Exception> {
    let conn = app.conn();
    let atom = cached_atom(app, atom_name)?;
    let mut value = conn
        .get_property(window, atom)
        .map_err(xerr)?
        .unwrap_or_default();
    if !value.is_empty() {
        value.push('\n');
    }
    value.push_str(line);
    conn.change_property(window, atom, &value);
    Ok(())
}

/// Handles property traffic on this application's comm window.
pub fn handle_comm_event(app: &TkApp, ev: &Event) {
    let Event::PropertyNotify {
        atom,
        deleted: false,
        ..
    } = ev
    else {
        return;
    };
    // Compare against the cached handshake atoms instead of asking the
    // server for the atom's name (a round trip per PropertyNotify).
    let (Ok(cmd_atom), Ok(res_atom)) = (
        cached_atom(app, "TkSendCommand"),
        cached_atom(app, "TkSendResult"),
    ) else {
        return;
    };
    let conn = app.conn();
    let name = if *atom == cmd_atom {
        "TkSendCommand"
    } else if *atom == res_atom {
        "TkSendResult"
    } else {
        return;
    };
    match name {
        "TkSendCommand" => {
            let Ok(Some(value)) = conn.get_property(app.inner.comm, *atom) else {
                return;
            };
            conn.delete_property(app.inner.comm, *atom);
            for line in value.lines() {
                let Ok(fields) = tcl::parse_list(line) else {
                    continue;
                };
                if fields.len() != 3 {
                    continue;
                }
                let serial = &fields[0];
                let sender: u32 = fields[1].parse().unwrap_or(0);
                let script = &fields[2];
                // "The Tk of the target application executes the command
                // and returns the result back to the originating
                // application."
                let (code, result) = match app.interp().eval(script) {
                    Ok(v) => (0, v),
                    Err(e) => (1, e.msg),
                };
                let reply = tcl::format_list(&[serial.clone(), code.to_string(), result]);
                // Best effort: if the reply cannot be delivered (sender's
                // window gone, connection faulted) the sender times out.
                let _ = append_to_property(app, Xid(sender), "TkSendResult", &reply);
            }
        }
        "TkSendResult" => {
            let Ok(Some(value)) = conn.get_property(app.inner.comm, *atom) else {
                return;
            };
            conn.delete_property(app.inner.comm, *atom);
            for line in value.lines() {
                let Ok(fields) = tcl::parse_list(line) else {
                    continue;
                };
                if fields.len() != 3 {
                    continue;
                }
                if let (Ok(serial), Ok(code)) = (fields[0].parse::<u64>(), fields[1].parse::<i64>())
                {
                    app.inner
                        .send
                        .borrow_mut()
                        .results
                        .insert(serial, (code, fields[2].clone()));
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn send_evaluates_in_target() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let b = env.app("beta");
        b.eval("set x in-beta").unwrap();
        let r = a.eval("send beta {set x}").unwrap();
        assert_eq!(r, "in-beta");
    }

    #[test]
    fn send_concatenates_args() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        assert_eq!(a.eval("send beta set y 41").unwrap(), "41");
        assert_eq!(a.eval("send beta expr {$y + 1}").unwrap(), "42");
    }

    #[test]
    fn send_to_self_works() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        assert_eq!(a.eval("send alpha {expr 1+1}").unwrap(), "2");
    }

    #[test]
    fn send_errors_propagate() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        let e = a.eval("send beta {error remote-boom}").unwrap_err();
        assert_eq!(e.msg, "remote-boom");
    }

    #[test]
    fn send_unknown_app_errors() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let e = a.eval("send nosuch {set x}").unwrap_err();
        assert!(e.msg.contains("no registered interpreter"), "{}", e.msg);
    }

    #[test]
    fn nested_send_round_trip() {
        // a sends to b a script that sends back to a.
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        a.eval("set here from-alpha").unwrap();
        let r = a.eval("send beta {send alpha {set here}}").unwrap();
        assert_eq!(r, "from-alpha");
    }

    #[test]
    fn duplicate_names_uniquified() {
        let env = TkEnv::new();
        let _a1 = env.app("app");
        let a2 = env.app("app");
        assert_eq!(a2.name(), "app #2");
        let names = crate::send::interps(&a2);
        assert!(names.contains(&"app".to_string()));
        assert!(names.contains(&"app #2".to_string()));
    }

    #[test]
    fn send_reaches_widgets() {
        // The debugger/editor scenario: one app manipulates the other's
        // interface ("any command that could be invoked within an
        // application may be invoked by other applications using send").
        let env = TkEnv::new();
        let editor = env.app("editor");
        let debugger = env.app("debugger");
        editor.eval("button .b -text idle -command {}").unwrap();
        debugger
            .eval("send editor {.b configure -text running}")
            .unwrap();
        let info = editor.eval(".b configure -text").unwrap();
        assert!(info.contains("running"), "{info}");
    }
}
