//! The `send` command (Section 6).
//!
//! `send ?-timeout ms? name command ?arg ...?` evaluates a Tcl command in
//! the named application and returns its result — a remote procedure call
//! between applications on the same display. The machinery follows the
//! paper:
//!
//! * every application registers `name → comm-window` in a property named
//!   `InterpRegistry` on the root window;
//! * a request is transported by appending (server-side `PropModeAppend`,
//!   so concurrent senders never lose each other's lines) to a
//!   `TkSendCommand` property on the target's comm window (the target
//!   hears the `PropertyNotify`);
//! * the result returns the same way via `TkSendResult` on the sender's
//!   comm window;
//! * while waiting, the sender keeps processing events, so nested and
//!   re-entrant sends work.
//!
//! On top of that transport this module layers the RPC hardening:
//!
//! * **Deadlines.** The sender waits on the virtual clock, not a spin
//!   count. A *slow* target keeps the sender pumping events until the
//!   deadline (default [`DEFAULT_TIMEOUT_MS`], override per call with
//!   `-timeout ms`); a *dead* target — comm window gone — fails the send
//!   immediately and prunes the stale registry entry.
//! * **At-most-once delivery.** Requests carry a per-sender serial; the
//!   receiver keeps a bounded per-peer window of executed serials and
//!   drops duplicates (a fault-duplicated `ChangeProperty`, or a retried
//!   request) without re-evaluating the script.
//! * **Retry.** Retryable X errors (`BadAlloc`/`BadValue`) on the send
//!   path's round trips are retried once after a short virtual-time
//!   backoff.
//! * **Self-healing registry.** `winfo interps` and the dead-target path
//!   prune entries whose comm window no longer exists; a `DestroyNotify`
//!   for a peer's comm window fails that peer's in-flight sends fast.
//!
//! Everything is observable through `rtk-obs`: the `send_latency_ms`
//! histogram and the `send_timeouts` / `send_retries` /
//! `send_dedup_drops` / `registry_gc` counters.

use std::collections::{HashMap, HashSet, VecDeque};

use tcl::{wrong_args, Code, Exception, TclResult};
use xsim::event::mask;
use xsim::{Atom, Event, WindowId, XError, Xid};

use crate::app::TkApp;
use crate::cache::xerr;

/// Default send deadline, in simulated milliseconds (~5 s, as real Tk's
/// later `send` used for its own timeout).
pub const DEFAULT_TIMEOUT_MS: u64 = 5000;
/// Virtual-time step while waiting quiescent for a slow target.
const WAIT_TICK_MS: u64 = 25;
/// Virtual-time backoff before the single retry of a retryable X error.
const RETRY_BACKOFF_MS: u64 = 10;
/// Consecutive event-pump rounds allowed before the wait loop forces a
/// deadline check (guards against a livelocked peer that perpetually
/// reschedules idle work and never replies).
const MAX_PUMPS_PER_TICK: u32 = 8;
/// Executed-serial window kept per peer for duplicate suppression.
const DEDUP_WINDOW: usize = 128;
/// Default number of registry property shards (`RTK_SEND_SHARDS`
/// overrides; 1 reproduces the paper's single `InterpRegistry`
/// property byte for byte).
pub const DEFAULT_SEND_SHARDS: u32 = 8;

/// FNV-1a over the interpreter name: the shard router. Stable across
/// processes by construction — every client sharing a display computes
/// the same shard for the same name.
fn name_hash(name: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Which of `n` shards holds `name`'s registry entry.
fn shard_of(name: &str, n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        name_hash(name) % n
    }
}

/// Property name of registry shard `i` of `n`. A single shard keeps the
/// paper's bare `InterpRegistry` name, so `RTK_SEND_SHARDS=1` is
/// byte-identical to the unsharded layout.
fn shard_property(i: u32, n: u32) -> String {
    if n <= 1 {
        "InterpRegistry".to_string()
    } else {
        format!("InterpRegistry.{i}")
    }
}

/// The interned registry atom (and shard index) responsible for `name`.
fn registry_atom_for(app: &TkApp, name: &str) -> Result<(Atom, u32), Exception> {
    let n = app.env().send_shards();
    let shard = shard_of(name, n);
    Ok((cached_atom(app, &shard_property(shard, n))?, shard))
}

/// How a send concluded, filled in from comm-window traffic.
enum SendOutcome {
    /// `{serial code result}` came back over `TkSendResult`.
    Reply(i64, String),
    /// The target's comm window was destroyed while we waited.
    TargetDied,
}

/// Per-application send state.
#[derive(Default)]
pub struct SendState {
    /// Per-shard serial counters: each registry shard has its own serial
    /// space (shard `k` of `n` issues wire serials `k+1, k+1+n,
    /// k+1+2n, ...`), disjoint by construction so in-flight sends to
    /// different shards can never collide on a serial.
    next_serials: HashMap<u32, u64>,
    /// Outcomes by serial, filled in by `TkSendResult` property traffic
    /// or by a peer comm window's DestroyNotify.
    outcomes: HashMap<u64, SendOutcome>,
    /// In-flight sends: serial → target comm window (so a DestroyNotify
    /// can fail exactly the sends aimed at the vanished peer).
    pending: HashMap<u64, WindowId>,
    /// Interned handshake atoms, warmed in one pipelined batch at
    /// `announce` time so the send path never re-interns per call.
    atoms: HashMap<String, Atom>,
    /// Per-peer (sender comm xid) windows of recently executed serials:
    /// the receiver side of at-most-once delivery.
    executed: HashMap<u32, VecDeque<u64>>,
    /// Peer comm windows this app selected StructureNotify on: the
    /// server's DestroyNotify delivery is interest-indexed, so anyone
    /// who wants fast peer-death detection registers like any other
    /// event consumer. One SelectInput per peer, not per send.
    watched: HashSet<u32>,
}

/// Looks up a handshake atom in the per-app cache, interning (one round
/// trip, first use only) on a miss. A protocol error on the intern (fault
/// injection, dead connection) surfaces as a Tcl exception.
fn cached_atom(app: &TkApp, name: &str) -> Result<Atom, Exception> {
    if let Some(a) = app.inner.send.borrow().atoms.get(name) {
        return Ok(*a);
    }
    let a = app.conn().intern_atom(name).map_err(xerr)?;
    app.inner
        .send
        .borrow_mut()
        .atoms
        .insert(name.to_string(), a);
    Ok(a)
}

/// Registers the `send` command and `winfo interps` support bits.
pub fn register(app: &TkApp) {
    app.register_command("send", cmd_send);
}

/// Runs a round trip with the send path's retry discipline: a retryable
/// X error (`BadAlloc`/`BadValue`) gets one retry after a short
/// virtual-time backoff; everything else surfaces immediately.
fn retry_once<T>(app: &TkApp, mut f: impl FnMut() -> Result<T, XError>) -> Result<T, XError> {
    match f() {
        Err(e) if e.retryable() => {
            app.inner.obs.incr("send_retries");
            app.env().advance(RETRY_BACKOFF_MS);
            f()
        }
        r => r,
    }
}

/// Adds this application to the root-window registry, uniquifying its
/// name if necessary (returns the final name).
pub fn announce(app: &TkApp) -> String {
    let conn = app.conn();
    let base = app.name();
    let shards = app.env().send_shards();
    // Warm the handshake atom cache in one pipelined batch: the base
    // name's registry shard and both transport atoms travel to the
    // server in a single flush. If the handshake fails (fault injection,
    // dead connection) the application keeps its base name and stays
    // unregistered — it still works standalone.
    let base_shard = shard_property(shard_of(&base, shards), shards);
    let reg_cookie = conn.send_intern_atom(&base_shard);
    let cmd_cookie = conn.send_intern_atom("TkSendCommand");
    let res_cookie = conn.send_intern_atom("TkSendResult");
    let (Ok(registry), Ok(cmd), Ok(res)) = (
        conn.wait(reg_cookie),
        conn.wait(cmd_cookie),
        conn.wait(res_cookie),
    ) else {
        return base;
    };
    {
        let mut st = app.inner.send.borrow_mut();
        st.atoms.insert(base_shard, registry);
        st.atoms.insert("TkSendCommand".into(), cmd);
        st.atoms.insert("TkSendResult".into(), res);
    }
    let root = conn.root();
    // Uniquify across shards: a candidate name lives in exactly one
    // shard (its hash), so existence is decided by that shard alone.
    // Each uniquification step re-routes, because "base #2" may hash
    // somewhere else entirely.
    let mut name = base.clone();
    let mut n = 1;
    let (registry, mut entries) = loop {
        let Ok((atom, _)) = registry_atom_for(app, &name) else {
            return base;
        };
        let existing = conn
            .get_property(root, atom)
            .ok()
            .flatten()
            .unwrap_or_default();
        let entries = parse_registry(&existing);
        if !entries.iter().any(|(e, _)| *e == name) {
            break (atom, entries);
        }
        n += 1;
        name = format!("{base} #{n}");
    };
    entries.push((name.clone(), app.inner.comm));
    conn.change_property(root, registry, &format_registry(&entries));
    *app.inner.name.borrow_mut() = name.clone();
    name
}

/// Removes an application from the registry (on destroy).
pub fn withdraw(app: &TkApp) {
    let conn = app.conn();
    let Ok((registry, _)) = registry_atom_for(app, &app.name()) else {
        return;
    };
    let root = conn.root();
    let Ok(existing) = conn.get_property(root, registry) else {
        return;
    };
    let existing = existing.unwrap_or_default();
    let name = app.name();
    let entries: Vec<(String, WindowId)> = parse_registry(&existing)
        .into_iter()
        .filter(|(e, _)| *e != name)
        .collect();
    conn.change_property(root, registry, &format_registry(&entries));
}

/// Removes an application from the registry after its connection died.
/// The protocol path is gone, so this edits the registry property directly
/// on the server — the same scrubbing a real Tk performs when it notices a
/// stale entry whose comm window no longer exists.
pub fn withdraw_post_mortem(app: &TkApp) {
    let name = app.name();
    let shards = app.env().send_shards();
    let prop = shard_property(shard_of(&name, shards), shards);
    app.env().display().with_server(|s| {
        let registry = s.intern_atom_direct(&prop);
        let root = s.root();
        let existing = s.get_property(root, registry).unwrap_or_default();
        let entries: Vec<(String, WindowId)> = parse_registry(&existing)
            .into_iter()
            .filter(|(e, _)| *e != name)
            .collect();
        s.change_property(root, registry, format_registry(&entries));
    });
}

/// Names of all registered applications (`winfo interps`).
///
/// Self-healing: every entry's comm window is probed (one pipelined batch,
/// a single flush) and entries whose window no longer exists are pruned
/// from the registry before the list is returned — a peer that crashed
/// without withdrawing stops haunting the registry the first time anyone
/// looks.
pub fn interps(app: &TkApp) -> Vec<String> {
    let conn = app.conn();
    let shards = app.env().send_shards();
    let mut shard_atoms = Vec::with_capacity(shards as usize);
    for i in 0..shards {
        let Ok(atom) = cached_atom(app, &shard_property(i, shards)) else {
            return Vec::new();
        };
        shard_atoms.push(atom);
    }
    let root = conn.root();
    // Read every shard in one pipelined batch (a single flush)...
    let prop_cookies: Vec<_> = shard_atoms
        .iter()
        .map(|a| conn.send_get_property(root, *a))
        .collect();
    let per_shard: Vec<Vec<(String, WindowId)>> = prop_cookies
        .into_iter()
        .map(|c| parse_registry(&conn.wait(c).ok().flatten().unwrap_or_default()))
        .collect();
    // ...then probe every entry's comm window in a second batch.
    let probe_cookies: Vec<Vec<_>> = per_shard
        .iter()
        .map(|entries| {
            entries
                .iter()
                .map(|(_, w)| conn.send_get_geometry(*w))
                .collect()
        })
        .collect();
    let mut names = Vec::new();
    let mut pruned_total = 0u64;
    for ((atom, entries), cookies) in shard_atoms.into_iter().zip(per_shard).zip(probe_cookies) {
        let mut live: Vec<(String, WindowId)> = Vec::with_capacity(entries.len());
        let mut pruned = 0u64;
        for ((name, w), cookie) in entries.into_iter().zip(cookies) {
            match conn.wait(cookie) {
                Ok(Some(_)) => live.push((name, w)),
                Ok(None) => pruned += 1,
                // Probe faulted: keep the entry — never prune on uncertainty.
                Err(_) => live.push((name, w)),
            }
        }
        if pruned > 0 {
            pruned_total += pruned;
            conn.change_property(root, atom, &format_registry(&live));
        }
        names.extend(live.into_iter().map(|(n, _)| n));
    }
    if pruned_total > 0 {
        app.inner.obs.add("registry_gc", pruned_total);
    }
    // Sorted, so the listing is identical whatever the shard count —
    // concatenation order would otherwise leak the shard layout.
    names.sort();
    names
}

fn parse_registry(text: &str) -> Vec<(String, WindowId)> {
    let mut out = Vec::new();
    if let Ok(items) = tcl::parse_list(text) {
        for item in items {
            if let Ok(pair) = tcl::parse_list(&item) {
                if pair.len() == 2 {
                    if let Ok(xid) = pair[1].parse::<u32>() {
                        out.push((pair[0].clone(), Xid(xid)));
                    }
                }
            }
        }
    }
    out
}

fn format_registry(entries: &[(String, WindowId)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(n, w)| tcl::format_list(&[n.clone(), w.0.to_string()]))
        .collect();
    tcl::format_list(&items)
}

/// Drops one `(name, comm)` pair from the registry (dead-target GC).
/// Matching on the pair, not the name alone, means a same-named successor
/// that re-announced in the meantime is left untouched.
fn prune_registry_entry(app: &TkApp, name: &str, comm: WindowId) {
    let conn = app.conn();
    let Ok((registry, _)) = registry_atom_for(app, name) else {
        return;
    };
    let Ok(existing) = conn.get_property(conn.root(), registry) else {
        return;
    };
    let existing = existing.unwrap_or_default();
    let entries = parse_registry(&existing);
    let before = entries.len();
    let kept: Vec<(String, WindowId)> = entries
        .into_iter()
        .filter(|(n, w)| !(n == name && *w == comm))
        .collect();
    if kept.len() != before {
        app.inner.obs.incr("registry_gc");
        conn.change_property(conn.root(), registry, &format_registry(&kept));
    }
}

/// `send ?-timeout ms? name command ?arg ...?`.
fn cmd_send(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    let mut args = &argv[1..];
    let mut timeout_ms = DEFAULT_TIMEOUT_MS;
    loop {
        match args.first().map(String::as_str) {
            Some("-timeout") => {
                let Some(v) = args.get(1) else {
                    return Err(Exception::error("value for \"-timeout\" missing"));
                };
                timeout_ms = v.parse().map_err(|_| {
                    Exception::error(format!("expected non-negative integer but got \"{v}\""))
                })?;
                args = &args[2..];
            }
            Some("--") => {
                args = &args[1..];
                break;
            }
            _ => break,
        }
    }
    if args.len() < 2 {
        return Err(wrong_args("send ?-timeout ms? interpName arg ?arg ...?"));
    }
    let target_name = &args[0];
    let script = if args.len() == 2 {
        args[1].clone()
    } else {
        args[1..].join(" ")
    };
    // Sending to ourselves is a direct evaluation (as in Tk).
    if *target_name == app.name() {
        return app.interp().eval(&script);
    }
    let start = app.env().now();
    let r = send_remote(app, target_name, &script, timeout_ms);
    app.inner
        .obs
        .record_ns("send_latency_ms", app.env().now().saturating_sub(start));
    r
}

/// The remote path of `send`: registry lookup, request append, then the
/// deadline-based wait for the outcome.
fn send_remote(app: &TkApp, target_name: &str, script: &str, timeout_ms: u64) -> TclResult {
    let conn = app.conn();
    // The target's name decides which registry shard to consult — one
    // GetProperty against that shard, never a scan of all of them.
    let (registry, shard) = registry_atom_for(app, target_name)?;
    let existing = retry_once(app, || conn.get_property(conn.root(), registry))
        .map_err(xerr)?
        .unwrap_or_default();
    let target_comm = parse_registry(&existing)
        .into_iter()
        .find(|(n, _)| n == target_name)
        .map(|(_, w)| w)
        .ok_or_else(|| {
            Exception::error(format!("no registered interpreter named \"{target_name}\""))
        })?;

    // First send to this peer: select StructureNotify on its comm window
    // so the server's interest index routes the peer's DestroyNotify here
    // (event delivery is O(interested clients), not a broadcast). Never
    // on our own comm — SelectInput replaces this client's mask and would
    // clobber the PropertyChange selection the protocol runs on.
    if target_comm != app.inner.comm {
        let newly_watched = app.inner.send.borrow_mut().watched.insert(target_comm.0);
        if newly_watched {
            conn.select_input(target_comm, mask::STRUCTURE_NOTIFY);
        }
    }

    // Compose the request and append it atomically (PropModeAppend) to
    // the target's comm property: one one-way request, no read-modify-
    // write race with concurrent senders.
    let cmd_atom = cached_atom(app, "TkSendCommand")?;
    let serial = {
        let mut st = app.inner.send.borrow_mut();
        // Each shard owns a disjoint serial space: shard k of n issues
        // k+1, k+1+n, k+1+2n, ... so serials stay globally unique at the
        // sender without cross-shard coordination (n=1 degenerates to the
        // classic 1, 2, 3, ...).
        let n = app.env().send_shards() as u64;
        let count = st.next_serials.entry(shard).or_insert(0);
        *count += 1;
        let serial = (*count - 1) * n + shard as u64 + 1;
        st.pending.insert(serial, target_comm);
        serial
    };
    let request = tcl::format_list(&[
        serial.to_string(),
        app.inner.comm.0.to_string(),
        script.to_string(),
    ]);
    // The client-side send span is keyed on the serial — the receiver's
    // "send.eval" span carries the same serial, which is how the two
    // halves of the RPC correlate across application traces.
    let _tspan = app.inner.tracer.begin("send", target_name, serial);
    conn.append_property(target_comm, cmd_atom, &request);

    let result = wait_for_outcome(app, target_name, target_comm, serial, timeout_ms);
    app.inner.send.borrow_mut().pending.remove(&serial);
    result
}

/// Waits for a send's outcome with a deadline on the virtual clock,
/// distinguishing *slow* (keep pumping events, advance simulated time in
/// small ticks until the deadline) from *dead* (the target's comm window
/// no longer exists: fail immediately and GC the registry entry).
fn wait_for_outcome(
    app: &TkApp,
    target_name: &str,
    target_comm: WindowId,
    serial: u64,
    timeout_ms: u64,
) -> TclResult {
    let env = app.env();
    let deadline = env.now().saturating_add(timeout_ms);
    let mut pumps = 0u32;
    loop {
        // (The outcome is moved out of the borrow before `finish` runs —
        // `finish` itself needs the send state for registry GC.)
        let outcome = app.inner.send.borrow_mut().outcomes.remove(&serial);
        if let Some(outcome) = outcome {
            return finish(app, target_name, target_comm, outcome);
        }
        // Pump everyone's events (the paper: the sender keeps processing
        // events while it waits, so nested and re-entrant sends work).
        let progressed = env.dispatch_all();
        let outcome = app.inner.send.borrow_mut().outcomes.remove(&serial);
        if let Some(outcome) = outcome {
            return finish(app, target_name, target_comm, outcome);
        }
        if app.destroyed() {
            // Our own side collapsed (connection death noticed during the
            // pump) — not the target's fault; say so.
            return Err(Exception::error(format!(
                "send to \"{target_name}\" aborted: the sending application has been destroyed"
            )));
        }
        if progressed && pumps < MAX_PUMPS_PER_TICK {
            pumps += 1;
            continue;
        }
        pumps = 0;
        // Quiescent without an outcome: is the target slow, or dead?
        match retry_once(app, || app.conn().get_geometry(target_comm)) {
            Ok(Some(_)) => {} // alive, just slow — keep waiting
            Ok(None) => {
                // Comm window gone: the target died without withdrawing.
                prune_registry_entry(app, target_name, target_comm);
                return Err(Exception::error(format!(
                    "target interpreter \"{target_name}\" died or did not respond"
                )));
            }
            Err(e) => return Err(xerr(e)),
        }
        let now = env.now();
        if now >= deadline {
            app.inner.obs.incr("send_timeouts");
            return Err(Exception::error(format!(
                "send to \"{target_name}\" timed out after {timeout_ms}ms \
                 (target alive but unresponsive)"
            )));
        }
        env.advance(WAIT_TICK_MS.min(deadline - now));
    }
}

/// Converts a concluded send into its Tcl result.
fn finish(
    app: &TkApp,
    target_name: &str,
    target_comm: WindowId,
    outcome: SendOutcome,
) -> TclResult {
    match outcome {
        SendOutcome::Reply(0, value) => Ok(value),
        SendOutcome::Reply(_, msg) => Err(Exception {
            code: Code::Error,
            msg,
            trace: vec![format!("invoked from within send to \"{target_name}\"")],
        }),
        SendOutcome::TargetDied => {
            prune_registry_entry(app, target_name, target_comm);
            Err(Exception::error(format!(
                "target interpreter \"{target_name}\" died or did not respond"
            )))
        }
    }
}

/// Receiver-side at-most-once check: records `serial` in the bounded
/// per-peer window and reports whether it was already there (a duplicated
/// or retried request that must not evaluate again).
fn already_executed(app: &TkApp, sender: u32, serial: u64) -> bool {
    let mut st = app.inner.send.borrow_mut();
    let window = st.executed.entry(sender).or_default();
    if window.contains(&serial) {
        return true;
    }
    window.push_back(serial);
    if window.len() > DEDUP_WINDOW {
        window.pop_front();
    }
    false
}

/// Fails in-flight sends aimed at a comm window that just got destroyed
/// (DestroyNotify broadcast), and drops the dedup history kept for that
/// peer. Cheap no-op for the DestroyNotify traffic of ordinary windows.
pub fn handle_peer_destroyed(app: &TkApp, window: WindowId) {
    let mut st = app.inner.send.borrow_mut();
    let affected: Vec<u64> = st
        .pending
        .iter()
        .filter(|(_, w)| **w == window)
        .map(|(s, _)| *s)
        .collect();
    for serial in affected {
        st.outcomes.insert(serial, SendOutcome::TargetDied);
    }
    st.executed.remove(&window.0);
    st.watched.remove(&window.0);
}

/// Handles property traffic on this application's comm window.
pub fn handle_comm_event(app: &TkApp, ev: &Event) {
    let Event::PropertyNotify {
        atom,
        deleted: false,
        ..
    } = ev
    else {
        return;
    };
    // Compare against the cached handshake atoms instead of asking the
    // server for the atom's name (a round trip per PropertyNotify).
    let (Ok(cmd_atom), Ok(res_atom)) = (
        cached_atom(app, "TkSendCommand"),
        cached_atom(app, "TkSendResult"),
    ) else {
        return;
    };
    let conn = app.conn();
    if *atom == cmd_atom {
        // Atomic read-and-delete: with senders on other threads, a
        // separate get + delete would destroy any append that lands in
        // between; `take_property` closes that window at the server.
        let Ok(Some(value)) = conn.take_property(app.inner.comm, *atom) else {
            return;
        };
        for line in value.lines() {
            let Ok(fields) = tcl::parse_list(line) else {
                continue;
            };
            if fields.len() != 3 {
                continue;
            }
            let Ok(serial) = fields[0].parse::<u64>() else {
                continue;
            };
            let sender: u32 = fields[1].parse().unwrap_or(0);
            let script = &fields[2];
            // At-most-once: a duplicated ChangeProperty (fault injection)
            // or a retried request is dropped, not re-evaluated. The
            // serial is recorded *before* the eval so a duplicate arriving
            // re-entrantly during the eval is suppressed too.
            if already_executed(app, sender, serial) {
                app.inner.obs.incr("send_dedup_drops");
                continue;
            }
            // First request from this peer: watch its comm window so we
            // learn promptly (via the interest index) when it dies and
            // can drop the dedup history kept for it. Skip self-sends —
            // re-selecting our own comm would clobber PropertyChange.
            if sender != 0 && sender != app.inner.comm.0 {
                let newly_watched = app.inner.send.borrow_mut().watched.insert(sender);
                if newly_watched {
                    conn.select_input(Xid(sender), mask::STRUCTURE_NOTIFY);
                }
            }
            // "The Tk of the target application executes the command
            // and returns the result back to the originating
            // application." The receiver-side span shares the sender's
            // serial, linking both halves of the RPC across traces.
            let (code, result) = {
                let _tspan =
                    app.inner
                        .tracer
                        .begin("send.eval", format!("from client {sender}"), serial);
                match app.interp().eval(script) {
                    Ok(v) => (0, v),
                    Err(e) => (1, e.msg),
                }
            };
            let reply = tcl::format_list(&[serial.to_string(), code.to_string(), result]);
            // Best effort: if the sender's window is gone the server
            // drops the append and the sender's own deadline machinery
            // reports the failure.
            conn.append_property(Xid(sender), res_atom, &reply);
        }
    } else if *atom == res_atom {
        let Ok(Some(value)) = conn.take_property(app.inner.comm, *atom) else {
            return;
        };
        for line in value.lines() {
            let Ok(fields) = tcl::parse_list(line) else {
                continue;
            };
            if fields.len() != 3 {
                continue;
            }
            if let (Ok(serial), Ok(code)) = (fields[0].parse::<u64>(), fields[1].parse::<i64>()) {
                app.inner
                    .send
                    .borrow_mut()
                    .outcomes
                    .insert(serial, SendOutcome::Reply(code, fields[2].clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;
    use xsim::{FaultPlan, XErrorCode};

    #[test]
    fn send_evaluates_in_target() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let b = env.app("beta");
        b.eval("set x in-beta").unwrap();
        let r = a.eval("send beta {set x}").unwrap();
        assert_eq!(r, "in-beta");
    }

    #[test]
    fn send_concatenates_args() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        assert_eq!(a.eval("send beta set y 41").unwrap(), "41");
        assert_eq!(a.eval("send beta expr {$y + 1}").unwrap(), "42");
    }

    #[test]
    fn send_to_self_works() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        assert_eq!(a.eval("send alpha {expr 1+1}").unwrap(), "2");
    }

    #[test]
    fn send_errors_propagate() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        let e = a.eval("send beta {error remote-boom}").unwrap_err();
        assert_eq!(e.msg, "remote-boom");
    }

    #[test]
    fn send_unknown_app_errors() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let e = a.eval("send nosuch {set x}").unwrap_err();
        assert!(e.msg.contains("no registered interpreter"), "{}", e.msg);
    }

    #[test]
    fn nested_send_round_trip() {
        // a sends to b a script that sends back to a.
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        a.eval("set here from-alpha").unwrap();
        let r = a.eval("send beta {send alpha {set here}}").unwrap();
        assert_eq!(r, "from-alpha");
    }

    #[test]
    fn duplicate_names_uniquified() {
        let env = TkEnv::new();
        let _a1 = env.app("app");
        let a2 = env.app("app");
        assert_eq!(a2.name(), "app #2");
        let names = crate::send::interps(&a2);
        assert!(names.contains(&"app".to_string()));
        assert!(names.contains(&"app #2".to_string()));
    }

    #[test]
    fn send_reaches_widgets() {
        // The debugger/editor scenario: one app manipulates the other's
        // interface ("any command that could be invoked within an
        // application may be invoked by other applications using send").
        let env = TkEnv::new();
        let editor = env.app("editor");
        let debugger = env.app("debugger");
        editor.eval("button .b -text idle -command {}").unwrap();
        debugger
            .eval("send editor {.b configure -text running}")
            .unwrap();
        let info = editor.eval(".b configure -text").unwrap();
        assert!(info.contains("running"), "{info}");
    }

    #[test]
    fn send_timeout_option_is_parsed_and_validated() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        // A generous explicit timeout on a healthy target just works.
        assert_eq!(a.eval("send -timeout 1000 beta {expr 2+2}").unwrap(), "4");
        assert_eq!(a.eval("send -- beta {expr 2+3}").unwrap(), "5");
        let e = a.eval("send -timeout").unwrap_err();
        assert!(
            e.msg.contains("value for \"-timeout\" missing"),
            "{}",
            e.msg
        );
        let e = a.eval("send -timeout abc beta {set x}").unwrap_err();
        assert!(e.msg.contains("expected non-negative integer"), "{}", e.msg);
    }

    #[test]
    fn lost_request_times_out_at_the_deadline_when_target_is_alive() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        a.eval("send beta {}").unwrap(); // warm the handshake
        let seq = a.conn().sequence();
        // The next send issues GetProperty(registry) at seq+1 (round
        // trip), then the request append at seq+2 — drop exactly that.
        env.display()
            .with_server(|s| s.install_fault_plan(FaultPlan::default().drop_at(1, seq + 2)));
        let t0 = env.now();
        let e = a.eval("send -timeout 200 beta {set x 1}").unwrap_err();
        assert!(e.msg.contains("timed out after 200ms"), "{}", e.msg);
        assert!(
            env.now() >= t0 + 200,
            "the deadline runs on the virtual clock ({} -> {})",
            t0,
            env.now()
        );
        assert_eq!(a.obs().counter("send_timeouts"), 1);
        // The transport is not poisoned: the next send works.
        assert_eq!(a.eval("send beta {expr 1+1}").unwrap(), "2");
    }

    #[test]
    fn dead_target_fails_fast_and_is_pruned_from_the_registry() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let b = env.app("beta");
        a.eval("send beta {}").unwrap();
        // Kill beta's comm window server-side without any withdraw — the
        // registry entry goes stale, as after a crash.
        let beta_comm = b.inner.comm;
        env.display().with_server(|s| s.destroy_window(beta_comm));
        let t0 = env.now();
        let e = a.eval("send beta {set x 1}").unwrap_err();
        assert!(e.msg.contains("died or did not respond"), "{}", e.msg);
        // Dead, not slow: no 5-second deadline was consumed.
        assert!(env.now() - t0 < super::DEFAULT_TIMEOUT_MS / 2);
        assert!(a.obs().counter("registry_gc") >= 1);
        // The stale entry is gone; the next send fails the lookup.
        let e = a.eval("send beta {set x 1}").unwrap_err();
        assert!(e.msg.contains("no registered interpreter"), "{}", e.msg);
    }

    #[test]
    fn winfo_interps_prunes_stale_entries() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let b = env.app("beta");
        let _c = env.app("gamma");
        let beta_comm = b.inner.comm;
        env.display().with_server(|s| s.destroy_window(beta_comm));
        let names = crate::send::interps(&a);
        assert!(names.contains(&"alpha".to_string()));
        assert!(names.contains(&"gamma".to_string()));
        assert!(!names.contains(&"beta".to_string()), "{names:?}");
        assert_eq!(a.obs().counter("registry_gc"), 1);
        // The prune rewrote the registry: a second listing is clean
        // without further GC.
        let names = crate::send::interps(&a);
        assert!(!names.contains(&"beta".to_string()));
        assert_eq!(a.obs().counter("registry_gc"), 1);
    }

    #[test]
    fn duplicated_request_evaluates_exactly_once() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let b = env.app("beta");
        b.eval("set n 0").unwrap();
        a.eval("send beta {}").unwrap(); // warm the handshake
        let seq = a.conn().sequence();
        // Blanket the next few sequence numbers with duplicate faults:
        // whichever lands on the request append doubles the line
        // server-side. (Duplicate faults only apply to buffered one-ways,
        // so specs landing on round trips never fire.)
        let mut plan = FaultPlan::default();
        for s in 1..=6 {
            plan = plan.duplicate_at(1, seq + s);
        }
        env.display().with_server(|s| s.install_fault_plan(plan));
        let r = a.eval("send beta {incr n}").unwrap();
        assert_eq!(r, "1", "the first evaluation's result comes back");
        env.dispatch_all();
        assert_eq!(
            b.eval("set n").unwrap(),
            "1",
            "the duplicated request must not evaluate twice"
        );
        assert!(b.obs().counter("send_dedup_drops") >= 1);
    }

    #[test]
    fn retryable_error_on_the_lookup_is_retried_once() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        a.eval("send beta {}").unwrap();
        let seq = a.conn().sequence();
        // BadAlloc on the registry GetProperty round trip (seq+1).
        env.display().with_server(|s| {
            s.install_fault_plan(FaultPlan::default().error_at(1, seq + 1, XErrorCode::BadAlloc))
        });
        assert_eq!(a.eval("send beta {expr 6*7}").unwrap(), "42");
        assert_eq!(a.obs().counter("send_retries"), 1);
    }

    #[test]
    fn send_latency_histogram_is_recorded() {
        let env = TkEnv::new();
        let a = env.app("alpha");
        let _b = env.app("beta");
        a.eval("send beta {}").unwrap();
        a.eval("send beta {}").unwrap();
        let h = a.obs().histogram("send_latency_ms").expect("histogram");
        assert_eq!(h.count(), 2);
    }
}
