//! The option database (Section 3.5).
//!
//! Users specify preferences with X-resource-manager patterns like
//! `*Button.background: red`. Patterns are sequences of components
//! separated by `.` (tight binding) or `*` (loose binding, skipping any
//! number of levels). Each component matches either the *name* or the
//! *class* at that level of the widget hierarchy. Entries carry a
//! priority; among matches the highest priority wins, then the more
//! specific pattern (tight bindings and name matches beat loose bindings
//! and class matches), then the most recently added.

/// Priority levels, mirroring Tk's named levels.
pub mod priority {
    /// Factory defaults compiled into widgets.
    pub const WIDGET_DEFAULT: u32 = 20;
    /// Application start-up code.
    pub const STARTUP_FILE: u32 = 40;
    /// The user's .Xdefaults.
    pub const USER_DEFAULT: u32 = 60;
    /// Interactive overrides.
    pub const INTERACTIVE: u32 = 80;
}

/// One pattern component plus how it binds to the previous one.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Component {
    /// `true` when the component was preceded by `*`.
    loose: bool,
    /// The component text (a name, a class, or `?`).
    text: String,
}

/// A parsed option-database entry.
#[derive(Debug, Clone)]
struct Entry {
    components: Vec<Component>,
    value: String,
    priority: u32,
    serial: u64,
}

/// The option database.
#[derive(Debug, Default)]
pub struct OptionDb {
    entries: Vec<Entry>,
    next_serial: u64,
}

/// Splits a pattern like `*Button.background` into components.
fn parse_pattern(pattern: &str) -> Vec<Component> {
    let mut out = Vec::new();
    let mut loose = false;
    let mut cur = String::new();
    for c in pattern.chars() {
        match c {
            '.' => {
                if !cur.is_empty() {
                    out.push(Component {
                        loose,
                        text: std::mem::take(&mut cur),
                    });
                    loose = false;
                }
            }
            '*' => {
                if !cur.is_empty() {
                    out.push(Component {
                        loose,
                        text: std::mem::take(&mut cur),
                    });
                }
                loose = true;
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(Component { loose, text: cur });
    }
    out
}

impl OptionDb {
    /// Creates an empty database.
    pub fn new() -> OptionDb {
        OptionDb::default()
    }

    /// Adds `pattern: value` at `priority`.
    pub fn add(&mut self, pattern: &str, value: &str, priority: u32) {
        self.next_serial += 1;
        self.entries.push(Entry {
            components: parse_pattern(pattern),
            value: value.to_string(),
            priority,
            serial: self.next_serial,
        });
    }

    /// Removes everything (the `option clear` command).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the option for a widget.
    ///
    /// `names` is the widget path split into levels with the option's
    /// *name* appended (e.g. `["x", "b", "background"]` for window `.x.b`);
    /// `classes` is the parallel class list (e.g. `["Frame", "Button",
    /// "Background"]`). Returns the winning value, if any entry matches.
    pub fn get(&self, names: &[&str], classes: &[&str]) -> Option<String> {
        debug_assert_eq!(names.len(), classes.len());
        let mut best: Option<(u32, u64, u64)> = None; // (priority, specificity, serial)
        let mut best_value: Option<&str> = None;
        for e in &self.entries {
            if let Some(spec) = match_entry(&e.components, names, classes) {
                let key = (e.priority, spec, e.serial);
                if best.map(|b| key > b).unwrap_or(true) {
                    best = Some(key);
                    best_value = Some(&e.value);
                }
            }
        }
        best_value.map(str::to_string)
    }

    /// Parses `.Xdefaults`-style text (`pattern: value` lines, `!` or `#`
    /// comments) and adds every entry at `priority`.
    pub fn load_defaults(&mut self, text: &str, priority: u32) -> usize {
        let mut added = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
                continue;
            }
            if let Some(colon) = line.find(':') {
                let pattern = line[..colon].trim();
                let value = line[colon + 1..].trim();
                if !pattern.is_empty() {
                    self.add(pattern, value, priority);
                    added += 1;
                }
            }
        }
        added
    }
}

/// Matches the entry components against the widget levels; returns a
/// specificity score (higher = more specific) or `None` on mismatch.
fn match_entry(components: &[Component], names: &[&str], classes: &[&str]) -> Option<u64> {
    // Recursive matcher over (component index, level index). Specificity
    // accumulates 3 for a name match, 2 for a class match, 1 for `?`, and
    // tight bindings add 1 per component; implemented as base-8 digits so
    // earlier (higher) levels dominate.
    fn rec(
        comps: &[Component],
        names: &[&str],
        classes: &[&str],
        ci: usize,
        li: usize,
    ) -> Option<u64> {
        if ci == comps.len() {
            return if li == names.len() { Some(0) } else { None };
        }
        let c = &comps[ci];
        let here = |li: usize| -> Option<u64> {
            if li >= names.len() {
                return None;
            }
            let base = if c.text == names[li] {
                3
            } else if c.text == classes[li] {
                2
            } else if c.text == "?" {
                1
            } else {
                return None;
            };
            let tight_bonus = if c.loose { 0 } else { 1 };
            let shift = 4 * (names.len() - 1 - li).min(15);
            rec(comps, names, classes, ci + 1, li + 1)
                .map(|rest| rest + ((base + tight_bonus) << shift))
        };
        if c.loose {
            // Try matching at this level or any deeper level.
            let mut best: Option<u64> = None;
            for skip in li..names.len() {
                if let Some(score) = here(skip) {
                    best = Some(best.map_or(score, |b: u64| b.max(score)));
                }
            }
            best
        } else {
            here(li)
        }
    }
    rec(components, names, classes, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(entries: &[(&str, &str)]) -> OptionDb {
        let mut d = OptionDb::new();
        for (p, v) in entries {
            d.add(p, v, priority::USER_DEFAULT);
        }
        d
    }

    #[test]
    fn star_class_pattern_matches_any_depth() {
        let d = db(&[("*Button.background", "red")]);
        assert_eq!(
            d.get(
                &["a", "b", "background"],
                &["Frame", "Button", "Background"]
            ),
            Some("red".into())
        );
        assert_eq!(
            d.get(
                &["deep", "er", "b", "background"],
                &["Frame", "Frame", "Button", "Background"]
            ),
            Some("red".into())
        );
        assert_eq!(
            d.get(&["a", "l", "background"], &["Frame", "Label", "Background"]),
            None
        );
    }

    #[test]
    fn exact_name_pattern() {
        let d = db(&[(".a.b.foreground", "blue")]);
        assert_eq!(
            d.get(
                &["a", "b", "foreground"],
                &["Frame", "Button", "Foreground"]
            ),
            Some("blue".into())
        );
        assert_eq!(
            d.get(
                &["a", "c", "foreground"],
                &["Frame", "Button", "Foreground"]
            ),
            None
        );
    }

    #[test]
    fn name_beats_class() {
        let mut d = OptionDb::new();
        d.add("*Button.background", "red", priority::USER_DEFAULT);
        d.add("*b.background", "green", priority::USER_DEFAULT);
        assert_eq!(
            d.get(
                &["a", "b", "background"],
                &["Frame", "Button", "Background"]
            ),
            Some("green".into())
        );
    }

    #[test]
    fn priority_dominates_specificity() {
        let mut d = OptionDb::new();
        d.add(".a.b.background", "specific", priority::WIDGET_DEFAULT);
        d.add("*background", "loud", priority::INTERACTIVE);
        assert_eq!(
            d.get(
                &["a", "b", "background"],
                &["Frame", "Button", "Background"]
            ),
            Some("loud".into())
        );
    }

    #[test]
    fn later_entry_wins_ties() {
        let mut d = OptionDb::new();
        d.add("*background", "first", priority::USER_DEFAULT);
        d.add("*background", "second", priority::USER_DEFAULT);
        assert_eq!(
            d.get(&["a", "background"], &["Button", "Background"]),
            Some("second".into())
        );
    }

    #[test]
    fn global_star_option() {
        let d = db(&[("*background", "gray")]);
        assert_eq!(
            d.get(
                &["x", "y", "z", "background"],
                &["A", "B", "C", "Background"]
            ),
            Some("gray".into())
        );
    }

    #[test]
    fn question_mark_matches_one_level() {
        let d = db(&[(".?.background", "x")]);
        assert_eq!(
            d.get(&["a", "background"], &["Frame", "Background"]),
            Some("x".into())
        );
        assert_eq!(
            d.get(&["a", "b", "background"], &["Frame", "Frame", "Background"]),
            None
        );
    }

    #[test]
    fn load_defaults_parses_lines() {
        let mut d = OptionDb::new();
        let n = d.load_defaults(
            "! comment\n*Button.background: red\n\n*font:  fixed  \n# also comment\n",
            priority::USER_DEFAULT,
        );
        assert_eq!(n, 2);
        assert_eq!(
            d.get(&["b", "font"], &["Button", "Font"]),
            Some("fixed".into())
        );
    }

    #[test]
    fn clear_empties() {
        let mut d = db(&[("*a", "1")]);
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn paper_example_all_buttons_red() {
        // "*Button.background: red" means that all button widgets should
        // have a red background color.
        let d = db(&[("*Button.background", "red")]);
        for path in [vec!["hello", "background"], vec!["box", "ok", "background"]] {
            // Every inner level is a Frame, the widget itself a Button.
            let mut cls: Vec<&str> = vec!["Frame"; path.len() - 1];
            cls[path.len() - 2] = "Button";
            cls.push("Background");
            assert_eq!(
                d.get(&path, &cls[..path.len()]),
                Some("red".into()),
                "path {path:?}"
            );
        }
    }
}
