//! The `obs` command: the Tcl-level surface of the observability core.
//!
//! Everything the toolkit measures — protocol requests per kind, round-trip
//! latency, cache hits and misses, binding dispatch, redraw and relayout
//! timing — is inspectable from scripts:
//!
//! ```tcl
//! obs counters              ;# flat name/value list
//! obs histogram redraw_ns   ;# one-line latency summary
//! obs trace on              ;# start recording the protocol trace
//! obs trace 10              ;# the last 10 protocol requests
//! obs spans                 ;# causal span tree (rtk-trace)
//! obs spans flat            ;# one span per line
//! obs spans json            ;# span records as JSON
//! obs snapshot              ;# human-readable overview
//! obs audit                 ;# post-run resource-leak audit (empty = clean)
//! obs reset                 ;# zero every counter, histogram, and trace
//! obs dump -format json     ;# machine-readable dump of everything
//! ```

use tcl::{wrong_args, Exception, TclResult};

use crate::app::TkApp;

/// Registers the `obs` command.
pub fn register(app: &TkApp) {
    app.register_command("obs", cmd_obs);
}

fn cmd_obs(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("obs option ?arg ...?"));
    }
    match argv[1].as_str() {
        "counters" => Ok(counters_list(app)),
        "histogram" => {
            let name = argv
                .get(2)
                .ok_or_else(|| wrong_args("obs histogram name"))?;
            match find_histogram(app, name) {
                Some(h) => Ok(h.summary()),
                None => Err(Exception::error(format!(
                    "no histogram named \"{name}\": should be one of {}",
                    histogram_names(app).join(", ")
                ))),
            }
        }
        "trace" => match argv.get(2).map(String::as_str) {
            Some("on") => {
                app.conn().obs_set_trace(true);
                Ok(String::new())
            }
            Some("off") => {
                app.conn().obs_set_trace(false);
                Ok(String::new())
            }
            Some(n) => {
                let n: usize = n.parse().map_err(|_| {
                    Exception::error(format!("expected integer or on|off but got \"{n}\""))
                })?;
                Ok(trace_lines(app, n))
            }
            None => Ok(trace_lines(app, usize::MAX)),
        },
        "spans" => {
            let spans = app.tracer().snapshot();
            match argv.get(2).map(String::as_str) {
                None | Some("tree") => Ok(rtk_obs::span::spans_to_tree(&spans)),
                Some("flat") => Ok(rtk_obs::span::spans_to_flat(&spans)),
                Some("json") => Ok(rtk_obs::span::spans_to_json(&spans)),
                Some(other) => Err(Exception::error(format!(
                    "bad format \"{other}\": must be tree, flat, or json"
                ))),
            }
        }
        "snapshot" => Ok(snapshot(app)),
        "audit" => {
            // The post-run resource-leak reckoning: every violation is a
            // server object still chargeable to a dead client (or a
            // registry shard pointing at a vanished comm window). Clean
            // runs return the empty string, so scripts can gate on it.
            let violations = app.conn().audit();
            app.obs().incr("audit.runs");
            app.obs().add("audit.violations", violations.len() as u64);
            Ok(violations.join("\n"))
        }
        "reset" => {
            // `reset_obs` starts a new tracer epoch server-side (the span
            // store clears and in-flight spans re-parent to the new root),
            // so spans stay scoped to the same epoch as every counter.
            app.conn().reset_obs();
            app.obs().reset();
            app.cache().reset_stats();
            app.inner.bindings.borrow_mut().reset_stats();
            // Compile counters reset; the program cache itself stays warm
            // so post-reset measurement epochs replay cached programs.
            app.interp().reset_compile_stats();
            Ok(String::new())
        }
        "dump" => {
            match argv.get(2).map(String::as_str) {
                None => {}
                Some("-format") => {
                    let fmt = argv.get(3).map(String::as_str).unwrap_or("");
                    if fmt != "json" {
                        return Err(Exception::error(format!(
                            "bad format \"{fmt}\": must be json"
                        )));
                    }
                }
                Some(other) => {
                    return Err(Exception::error(format!(
                        "bad option \"{other}\": must be -format"
                    )))
                }
            }
            Ok(dump_json(app))
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": must be counters, histogram, trace, spans, snapshot, \
             audit, reset, or dump"
        ))),
    }
}

/// Every counter the toolkit knows, as a flat Tcl list of name/value pairs:
/// protocol requests per kind (prefixed `req.`), cache hits and misses
/// (`cache.<class>.hits`/`.misses`), binding match statistics, and the
/// toolkit registry counters.
fn counters_list(app: &TkApp) -> String {
    let mut items: Vec<String> = Vec::new();
    let stats = app.conn().stats();
    items.push("protocol.requests".into());
    items.push(stats.requests.to_string());
    items.push("protocol.round_trips".into());
    items.push(stats.round_trips.to_string());
    items.push("protocol.events".into());
    items.push(stats.events.to_string());
    items.push("protocol.flushes".into());
    items.push(stats.flushes.to_string());
    items.push("protocol.batched_requests".into());
    items.push(stats.batched_requests.to_string());
    items.push("protocol.max_batch".into());
    items.push(stats.max_batch.to_string());
    items.push("protocol.max_pending_replies".into());
    items.push(stats.max_pending_replies.to_string());
    for (kind, n) in app.conn().obs_kind_counts() {
        items.push(format!("req.{kind}"));
        items.push(n.to_string());
    }
    let faults = app
        .conn()
        .with_obs(|o| (o.faults_injected, o.fault_kind_counts()));
    if let Some((total, by_kind)) = faults {
        items.push("protocol.faults_injected".into());
        items.push(total.to_string());
        for (kind, n) in by_kind {
            items.push(format!("fault.{kind}"));
            items.push(n.to_string());
        }
    }
    let wire = app.conn().wire_stats();
    if wire.active() {
        for (name, v) in [
            ("wire.frames_encoded", wire.frames_encoded),
            ("wire.bytes_encoded", wire.bytes_encoded),
            ("wire.frames_decoded", wire.frames_decoded),
            ("wire.bytes_decoded", wire.bytes_decoded),
            ("wire.flushes", wire.flushes),
            ("wire.backpressure_stalls", wire.backpressure_stalls),
            ("wire.checksum_errors", wire.checksum_errors),
            ("wire.watchdog_fires", wire.watchdog_fires),
        ] {
            items.push(name.into());
            items.push(v.to_string());
        }
    }
    for (class, hits, misses) in app.cache().stats() {
        items.push(format!("cache.{class}.hits"));
        items.push(hits.to_string());
        items.push(format!("cache.{class}.misses"));
        items.push(misses.to_string());
    }
    let (considered, matched) = app.inner.bindings.borrow().match_stats();
    items.push("bind.considered".into());
    items.push(considered.to_string());
    items.push("bind.matched".into());
    items.push(matched.to_string());
    for (name, v) in app.interp().compile_counters() {
        items.push(name.into());
        items.push(v.to_string());
    }
    for (name, v) in app.obs().counters() {
        items.push(name);
        items.push(v.to_string());
    }
    tcl::format_list(&items)
}

/// Looks up a histogram by name: the protocol histograms have the fixed
/// names `request_ns` and `round_trip_ns`; everything else lives in the
/// toolkit registry.
fn find_histogram(app: &TkApp, name: &str) -> Option<rtk_obs::Histogram> {
    match name {
        "request_ns" => Some(app.conn().obs_request_histogram()),
        "round_trip_ns" => Some(app.conn().obs_round_trip_histogram()),
        _ => app.obs().histogram(name),
    }
}

fn histogram_names(app: &TkApp) -> Vec<String> {
    let mut names = vec!["request_ns".to_string(), "round_trip_ns".to_string()];
    names.extend(app.obs().histogram_names());
    names
}

/// The last `n` protocol trace entries, one per line:
/// `seq kind one-way|round-trip window duration_ns ?fault=<kind>?`.
fn trace_lines(app: &TkApp, n: usize) -> String {
    app.conn()
        .obs_trace(n)
        .iter()
        .map(|e| {
            let fault = e.fault.map(|f| format!(" fault={f}")).unwrap_or_default();
            format!(
                "{} {} {} 0x{:x} {}{}",
                e.seq,
                e.kind.name(),
                if e.round_trip {
                    "round-trip"
                } else {
                    "one-way"
                },
                e.window.0,
                e.duration_ns,
                fault
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A human-readable overview of everything, for interactive poking.
fn snapshot(app: &TkApp) -> String {
    let mut out = String::new();
    let stats = app.conn().stats();
    out.push_str(&format!(
        "protocol: {} requests, {} round trips, {} events, {} flushes (max batch {})\n",
        stats.requests, stats.round_trips, stats.events, stats.flushes, stats.max_batch
    ));
    for (kind, n) in app.conn().obs_kind_counts() {
        out.push_str(&format!("  {kind}: {n}\n"));
    }
    out.push_str(&format!(
        "round_trip_ns: {}\n",
        app.conn().obs_round_trip_histogram().summary()
    ));
    out.push_str("cache:\n");
    for (class, hits, misses) in app.cache().stats() {
        if hits + misses > 0 {
            out.push_str(&format!("  {class}: {hits} hits, {misses} misses\n"));
        }
    }
    if let Some((total, by_kind)) = app
        .conn()
        .with_obs(|o| (o.faults_injected, o.fault_kind_counts()))
    {
        if total > 0 {
            out.push_str(&format!("faults: {total} injected\n"));
            for (kind, n) in by_kind {
                out.push_str(&format!("  {kind}: {n}\n"));
            }
        }
    }
    let (considered, matched) = app.inner.bindings.borrow().match_stats();
    out.push_str(&format!(
        "bind: {considered} considered, {matched} matched\n"
    ));
    out.push_str(&format!(
        "tcl: compile {}\n",
        if app.interp().compile_enabled() {
            "on"
        } else {
            "off"
        }
    ));
    for (name, v) in app.interp().compile_counters() {
        out.push_str(&format!("  {name}: {v}\n"));
    }
    out.push_str("toolkit:\n");
    for (name, v) in app.obs().counters() {
        out.push_str(&format!("  {name}: {v}\n"));
    }
    for name in app.obs().histogram_names() {
        if let Some(h) = app.obs().histogram(&name) {
            out.push_str(&format!("  {name}: {}\n", h.summary()));
        }
    }
    out.push_str(&format!(
        "trace: {}\n",
        if app.conn().obs_trace_enabled() {
            "on"
        } else {
            "off"
        }
    ));
    let t = app.tracer();
    out.push_str(&format!(
        "spans: {} recorded (epoch {}, {} open, {} dropped)\n",
        t.len(),
        t.epoch(),
        t.open_count(),
        t.dropped()
    ));
    out.pop();
    out
}

/// The full machine-readable dump: the acceptance surface of the
/// observability core. Validated JSON with the app name, the protocol
/// view (compat `ClientStats` plus the structured per-kind counters,
/// histograms, and trace), the cache hit/miss table, binding match
/// statistics, and the toolkit registry.
pub fn dump_json(app: &TkApp) -> String {
    let stats = app.conn().stats();
    let mut protocol = rtk_obs::json::Object::new();
    protocol.field_u64("requests", stats.requests);
    protocol.field_u64("round_trips", stats.round_trips);
    protocol.field_u64("events", stats.events);
    protocol.field_u64("flushes", stats.flushes);
    protocol.field_u64("batched_requests", stats.batched_requests);
    protocol.field_u64("max_batch", stats.max_batch);
    protocol.field_u64("max_pending_replies", stats.max_pending_replies);
    protocol.field_u64(
        "faults_injected",
        app.conn().with_obs(|o| o.faults_injected).unwrap_or(0),
    );
    protocol.field_raw("detail", &app.conn().obs_json());

    let (considered, matched) = app.inner.bindings.borrow().match_stats();
    let mut bind = rtk_obs::json::Object::new();
    bind.field_u64("considered", considered);
    bind.field_u64("matched", matched);

    let mut tcl_obj = rtk_obs::json::Object::new();
    tcl_obj.field_bool("compile_enabled", app.interp().compile_enabled());
    for (name, v) in app.interp().compile_counters() {
        tcl_obj.field_u64(name.trim_start_matches("tcl."), v);
    }

    let t = app.tracer();
    let span_records = t.snapshot();
    let mut shape = rtk_obs::SpanShape::default();
    shape.collect(&span_records);
    let mut stages = rtk_obs::json::Array::new();
    for (kind, count, ns, vms) in rtk_obs::span::stage_totals(&span_records) {
        let mut st = rtk_obs::json::Object::new();
        st.field_str("kind", &kind)
            .field_u64("count", count)
            .field_u64("total_ns", ns)
            .field_u64("total_vms", vms);
        stages.push_raw(&st.build());
    }
    let mut spans = rtk_obs::json::Object::new();
    spans
        .field_u64("count", span_records.len() as u64)
        .field_u64("epoch", t.epoch())
        .field_u64("open", t.open_count() as u64)
        .field_u64("dropped", t.dropped())
        .field_raw("stages", &stages.build())
        .field_raw("shape", &shape.to_json());

    let mut o = rtk_obs::json::Object::new();
    o.field_str("app", &app.name());
    o.field_raw("protocol", &protocol.build());
    o.field_raw("cache", &app.cache().stats_json());
    o.field_raw("bind", &bind.build());
    o.field_raw("tcl", &tcl_obj.build());
    o.field_raw("toolkit", &app.obs().to_json());
    o.field_raw("spans", &spans.build());
    o.build()
}

#[cfg(test)]
mod tests {
    use crate::TkEnv;

    #[test]
    fn counters_include_protocol_and_cache() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text hi").unwrap();
        app.update();
        let out = app.eval("obs counters").unwrap();
        assert!(out.contains("protocol.requests"), "{out}");
        assert!(out.contains("protocol.flushes"), "{out}");
        assert!(out.contains("protocol.batched_requests"), "{out}");
        assert!(out.contains("req.CreateWindow"), "{out}");
        assert!(out.contains("cache.color.misses"), "{out}");
    }

    #[test]
    fn histogram_summary_and_unknown_name() {
        let env = TkEnv::new();
        let app = env.app("t");
        let out = app.eval("obs histogram round_trip_ns").unwrap();
        assert!(out.starts_with("count "), "{out}");
        let err = app.eval("obs histogram nosuch").unwrap_err();
        assert!(err.msg.contains("no histogram named"), "{}", err.msg);
    }

    #[test]
    fn trace_toggles_and_lists() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("obs trace on").unwrap();
        app.eval("frame .f").unwrap();
        let out = app.eval("obs trace 5").unwrap();
        assert!(out.contains("CreateWindow"), "{out}");
        app.eval("obs trace off").unwrap();
        let before = app.eval("obs trace").unwrap();
        app.eval("frame .g").unwrap();
        assert_eq!(
            app.eval("obs trace").unwrap(),
            before,
            "trace off records nothing"
        );
    }

    #[test]
    fn spans_subcommand_renders_tree_flat_and_json() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text hi; pack append . .b {top}")
            .unwrap();
        app.update();
        let tree = app.eval("obs spans").unwrap();
        assert!(tree.contains("update"), "{tree}");
        assert!(tree.contains("redraw"), "{tree}");
        assert!(tree.contains("relayout"), "{tree}");
        let flat = app.eval("obs spans flat").unwrap();
        assert!(flat.lines().count() >= tree.lines().count(), "{flat}");
        let json = app.eval("obs spans json").unwrap();
        assert!(rtk_obs::json::is_valid(&json), "{json}");
        assert!(json.contains("\"kind\":\"flush\""), "{json}");
        let err = app.eval("obs spans csv").unwrap_err();
        assert!(
            err.msg.contains("must be tree, flat, or json"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn dump_is_valid_json() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text hi").unwrap();
        app.update();
        let j = app.eval("obs dump -format json").unwrap();
        assert!(rtk_obs::json::is_valid(&j), "{j}");
        assert!(j.contains("\"by_kind\""), "{j}");
        assert!(j.contains("\"by_kind_round_trip\""), "{j}");
        assert!(j.contains("\"flushes\""), "{j}");
        assert!(j.contains("\"max_batch\""), "{j}");
        assert!(j.contains("\"cache\""), "{j}");
        assert!(j.contains("\"round_trip_ns\""), "{j}");
        assert!(j.contains("\"spans\""), "{j}");
        assert!(j.contains("\"stages\""), "{j}");
        let err = app.eval("obs dump -format xml").unwrap_err();
        assert!(err.msg.contains("must be json"), "{}", err.msg);
    }

    #[test]
    fn reset_zeroes_every_layer() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text hi; pack append . .b {top}")
            .unwrap();
        app.update();
        assert!(app.conn().stats().requests > 0);
        app.eval("obs reset").unwrap();
        assert_eq!(app.conn().stats().requests, 0);
        assert!(app.conn().obs_kind_counts().is_empty());
        assert_eq!(app.cache().hits() + app.cache().misses(), 0);
        assert!(app.obs().counters().is_empty());
        let (considered, matched) = app.inner.bindings.borrow().match_stats();
        assert_eq!((considered, matched), (0, 0));
    }

    #[test]
    fn snapshot_is_human_readable() {
        let env = TkEnv::new();
        let app = env.app("t");
        let out = app.eval("obs snapshot").unwrap();
        assert!(out.contains("protocol:"), "{out}");
        assert!(out.contains("trace: off"), "{out}");
    }

    #[test]
    fn injected_faults_show_in_counters_trace_and_dump() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("obs trace on").unwrap();
        let seq = app.conn().sequence();
        env.display().with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadAtom,
            ))
        });
        let err = app.eval("wm title . hello").unwrap_err();
        assert!(err.msg.contains("X protocol error"), "{}", err.msg);
        let out = app.eval("obs counters").unwrap();
        assert!(out.contains("protocol.faults_injected 1"), "{out}");
        assert!(out.contains("fault.error.BadAtom 1"), "{out}");
        let trace = app.eval("obs trace").unwrap();
        assert!(trace.contains("fault=error.BadAtom"), "{trace}");
        let snap = app.eval("obs snapshot").unwrap();
        assert!(snap.contains("faults: 1 injected"), "{snap}");
        let j = app.eval("obs dump -format json").unwrap();
        assert!(rtk_obs::json::is_valid(&j), "{j}");
        assert!(j.contains("\"faults_injected\":1"), "{j}");
        assert!(j.contains("\"by_fault\""), "{j}");
    }

    #[test]
    fn obs_reset_clears_fault_counters() {
        let env = TkEnv::new();
        let app = env.app("t");
        let seq = app.conn().sequence();
        env.display().with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadValue,
            ))
        });
        app.eval("wm title . hello").unwrap_err();
        app.eval("obs reset").unwrap();
        let out = app.eval("obs counters").unwrap();
        assert!(out.contains("protocol.faults_injected 0"), "{out}");
        assert!(!out.contains("fault.error.BadValue"), "{out}");
    }
}
