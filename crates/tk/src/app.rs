//! The Tk application object and event loop.
//!
//! [`TkEnv`] is one simulated display plus the set of Tk applications
//! connected to it (the paper ran each application in its own UNIX
//! process; we run them in one process — see DESIGN.md). [`TkApp`] is one
//! application: a Tcl interpreter, an X connection, the window table, the
//! binding table, the resource caches, the option database, geometry
//! management, timers, and when-idle handlers.
//!
//! Everything is single-threaded and reentrant: event dispatch evaluates
//! Tcl scripts which may create windows, re-enter the event loop
//! (`update`), or `send` commands to sibling applications.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use tcl::{Exception, Interp, TclResult};
use xsim::event::mask;
use xsim::{Connection, DamageList, Display, Event, Rect, WindowId};

use crate::bind::{percent_substitute, BindingTable, EventInfo};
use crate::cache::ResourceCache;
use crate::optiondb::OptionDb;
use crate::pack::Packer;
use crate::selection::SelectionState;
use crate::send::SendState;
use crate::window::{parent_path, validate_path, TkWindow};

/// A scheduled `after` timer.
struct Timer {
    id: u64,
    deadline: u64,
    script: String,
}

/// A file handler (Section 3.2's "file events, which trigger when a file
/// becomes readable or writable"). The simulation polls the file during
/// event processing and fires when it appears or its contents change --
/// the moment new data "becomes readable".
struct FileHandler {
    id: u64,
    path: std::path::PathBuf,
    script: String,
    /// `(len, mtime)` at the last check; `None` until first seen.
    last: Option<(u64, std::time::SystemTime)>,
}

/// A when-idle task. Deferred work remembers the span that scheduled it
/// (`cause`), so the redraw/relayout span executed much later is still a
/// child of the event that made the window dirty.
pub(crate) enum IdleTask {
    /// Run a Tcl script.
    Script(String),
    /// Redraw the widget on this path.
    Redraw {
        path: String,
        cause: rtk_obs::SpanId,
    },
    /// Recompute a geometry master's layout.
    Relayout {
        master: String,
        cause: rtk_obs::SpanId,
    },
}

/// Pending damage for one scheduled widget redraw.
pub(crate) enum Damage {
    /// Repaint the whole widget (the pre-damage behavior).
    Full,
    /// Repaint only these widget-relative rects.
    Rects(DamageList),
}

/// The environment: one display shared by any number of Tk applications.
#[derive(Clone)]
pub struct TkEnv {
    display: Display,
    apps: Rc<RefCell<Vec<Weak<AppInner>>>>,
    clock: rtk_obs::VirtualClock,
    /// Shared wall-clock origin for span tracing: every application's
    /// tracer measures from here, so multi-app traces align on one
    /// timeline in the Chrome trace export.
    origin: std::time::Instant,
    /// How many root-window property shards the `send` registry hashes
    /// interpreter names into (`RTK_SEND_SHARDS`; 1 = the paper's single
    /// `InterpRegistry` property). Every environment sharing a display
    /// must agree — the value routes lookups, it is not stored anywhere
    /// server-side.
    send_shards: Rc<Cell<u32>>,
}

impl Default for TkEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl TkEnv {
    /// Creates a fresh display with no applications.
    pub fn new() -> TkEnv {
        TkEnv::with_display(Display::new())
    }

    /// Wraps an existing display (e.g. one built from a shared
    /// [`xsim::WireHandle`], so several environments on their own threads
    /// talk to one threaded wire server).
    pub fn with_display(display: Display) -> TkEnv {
        let shards = std::env::var("RTK_SEND_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n >= 1)
            .unwrap_or(crate::send::DEFAULT_SEND_SHARDS);
        TkEnv {
            display,
            apps: Rc::new(RefCell::new(Vec::new())),
            clock: rtk_obs::VirtualClock::new(),
            origin: std::time::Instant::now(),
            send_shards: Rc::new(Cell::new(shards)),
        }
    }

    /// The number of `send` registry shards this environment routes by.
    pub fn send_shards(&self) -> u32 {
        self.send_shards.get().max(1)
    }

    /// Overrides the registry shard count (tests comparing sharded
    /// against unsharded behavior). Must be set before any application is
    /// created on this environment: announced names are routed by the
    /// count in effect at announce time.
    pub fn set_send_shards(&self, n: u32) {
        self.send_shards.set(n.max(1));
    }

    /// The underlying display (for input synthesis and screendumps).
    pub fn display(&self) -> &Display {
        &self.display
    }

    /// The current virtual time in milliseconds.
    pub fn now(&self) -> u64 {
        self.clock.get()
    }

    /// Creates a new application with interpreter and main window.
    pub fn app(&self, name: &str) -> TkApp {
        TkApp::new(self, name)
    }

    /// Processes pending work (events, idle tasks) for every application
    /// until nothing is pending. Returns true if anything ran. Bounded so
    /// that a pathological self-rescheduling idle handler cannot hang the
    /// environment.
    pub fn dispatch_all(&self) -> bool {
        let mut any = false;
        for _ in 0..1000 {
            let mut progressed = false;
            let apps: Vec<Rc<AppInner>> = self
                .apps
                .borrow()
                .iter()
                .filter_map(Weak::upgrade)
                .collect();
            for inner in apps {
                let app = TkApp { inner };
                if app.process_pending() {
                    progressed = true;
                }
                if app.run_idle_tasks() {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            any = true;
        }
        any
    }

    /// Advances virtual time by `ms`, firing due timers in every app, then
    /// settles all pending work.
    pub fn advance(&self, ms: u64) {
        self.clock.set(self.clock.get() + ms);
        let apps: Vec<Rc<AppInner>> = self
            .apps
            .borrow()
            .iter()
            .filter_map(Weak::upgrade)
            .collect();
        for inner in apps {
            let app = TkApp { inner };
            app.run_due_timers();
        }
        self.dispatch_all();
    }

    /// Applications currently registered for `send`, by name.
    pub fn application_names(&self) -> Vec<String> {
        self.apps
            .borrow()
            .iter()
            .filter_map(Weak::upgrade)
            .map(|a| a.name.borrow().clone())
            .collect()
    }

    fn register_app(&self, inner: &Rc<AppInner>) {
        self.apps.borrow_mut().push(Rc::downgrade(inner));
        self.apps.borrow_mut().retain(|w| w.strong_count() > 0);
    }
}

/// Shared state of one Tk application.
pub struct AppInner {
    pub(crate) name: RefCell<String>,
    pub(crate) env: TkEnv,
    pub(crate) conn: Connection,
    pub(crate) interp: Interp,
    pub(crate) windows: RefCell<HashMap<String, Rc<TkWindow>>>,
    pub(crate) by_xid: RefCell<HashMap<WindowId, String>>,
    pub(crate) bindings: RefCell<BindingTable>,
    pub(crate) cache: ResourceCache,
    pub(crate) options: RefCell<OptionDb>,
    pub(crate) packer: RefCell<Packer>,
    pub(crate) selection: RefCell<SelectionState>,
    pub(crate) send: RefCell<SendState>,
    /// Toolkit-level observability: counters and latency histograms for
    /// event dispatch, bindings, redraw, relayout, timers, and idle work.
    pub(crate) obs: rtk_obs::Registry,
    /// Causal span tracing (rtk-trace): one store per application, shared
    /// with the X connection so client- and server-side records form one
    /// tree.
    pub(crate) tracer: rtk_obs::Tracer,
    timers: RefCell<Vec<Timer>>,
    next_timer: Cell<u64>,
    file_handlers: RefCell<Vec<FileHandler>>,
    idle: RefCell<Vec<IdleTask>>,
    /// Pending damage for scheduled redraws, by widget path.
    damage: RefCell<HashMap<String, Damage>>,
    /// Damage-narrowed redraw on/off. Off = every redraw repaints the
    /// whole widget, the pre-damage behavior; `RTK_NO_DAMAGE=1` sets the
    /// initial state (equivalence tests flip it programmatically).
    damage_enabled: Cell<bool>,
    /// The invisible communication window used by `send`.
    pub(crate) comm: WindowId,
    destroyed: Cell<bool>,
}

/// One Tk application (cheaply clonable handle).
#[derive(Clone)]
pub struct TkApp {
    pub(crate) inner: Rc<AppInner>,
}

impl TkApp {
    /// Creates an application on `env` named `name`, with its interpreter,
    /// main window `"."`, and all Tk commands registered.
    pub fn new(env: &TkEnv, name: &str) -> TkApp {
        let conn = env.display.connect();
        let interp = Interp::new();
        // The send communication window: an unmapped child of the root on
        // which this app listens for property changes.
        let comm = conn
            .create_window(conn.root(), 0, 0, 1, 1, 0)
            .expect("root window exists");
        conn.select_input(comm, mask::PROPERTY_CHANGE);
        let tracer = rtk_obs::Tracer::new(env.origin);
        tracer.set_virtual_clock(env.clock.clone());
        conn.set_tracer(tracer.clone());
        let inner = Rc::new(AppInner {
            name: RefCell::new(name.to_string()),
            env: env.clone(),
            conn,
            interp,
            windows: RefCell::new(HashMap::new()),
            by_xid: RefCell::new(HashMap::new()),
            bindings: RefCell::new(BindingTable::new()),
            cache: ResourceCache::new(),
            options: RefCell::new(OptionDb::new()),
            packer: RefCell::new(Packer::new()),
            selection: RefCell::new(SelectionState::default()),
            send: RefCell::new(SendState::default()),
            obs: rtk_obs::Registry::new(),
            tracer,
            timers: RefCell::new(Vec::new()),
            next_timer: Cell::new(0),
            file_handlers: RefCell::new(Vec::new()),
            idle: RefCell::new(Vec::new()),
            damage: RefCell::new(HashMap::new()),
            damage_enabled: Cell::new(
                std::env::var("RTK_NO_DAMAGE").map_or(true, |v| v.is_empty() || v == "0"),
            ),
            comm,
            destroyed: Cell::new(false),
        });
        let app = TkApp { inner };
        env.register_app(&app.inner);

        // The main window "." — a toplevel child of the root.
        let main_xid = app
            .conn()
            .create_window(app.conn().root(), 0, 0, 200, 200, 0)
            .expect("root window exists");
        let rec = Rc::new(TkWindow::new(".", "Toplevel", main_xid));
        rec.width.set(200);
        rec.height.set(200);
        rec.req_width.set(200);
        rec.req_height.set(200);
        app.select_standard_input(main_xid);
        app.inner.windows.borrow_mut().insert(".".into(), rec);
        app.inner.by_xid.borrow_mut().insert(main_xid, ".".into());
        app.conn().map_window(main_xid);

        crate::cmds::register_all(&app);
        crate::widget::register_all(&app);
        crate::pack::register(&app);
        crate::send::register(&app);
        crate::selection::register(&app);
        crate::send::announce(&app);
        app.process_pending();
        app
    }

    /// The event mask every Tk window selects.
    fn select_standard_input(&self, xid: WindowId) {
        self.conn().select_input(
            xid,
            mask::EXPOSURE
                | mask::STRUCTURE_NOTIFY
                | mask::BUTTON_PRESS
                | mask::BUTTON_RELEASE
                | mask::KEY_PRESS
                | mask::ENTER_WINDOW
                | mask::LEAVE_WINDOW
                | mask::POINTER_MOTION
                | mask::FOCUS_CHANGE,
        );
    }

    /// This application's `send` name.
    pub fn name(&self) -> String {
        self.inner.name.borrow().clone()
    }

    /// The Tcl interpreter.
    pub fn interp(&self) -> &Interp {
        &self.inner.interp
    }

    /// The X connection.
    pub fn conn(&self) -> &Connection {
        &self.inner.conn
    }

    /// The environment this app lives in.
    pub fn env(&self) -> &TkEnv {
        &self.inner.env
    }

    /// The resource cache.
    pub fn cache(&self) -> &ResourceCache {
        &self.inner.cache
    }

    /// Toolkit-level observability metrics for this application.
    pub fn obs(&self) -> &rtk_obs::Registry {
        &self.inner.obs
    }

    /// The causal span tracer (rtk-trace) for this application.
    pub fn tracer(&self) -> &rtk_obs::Tracer {
        &self.inner.tracer
    }

    /// Evaluates a Tcl script in this application.
    pub fn eval(&self, script: &str) -> TclResult {
        self.inner.interp.eval(script)
    }

    /// Looks up a window record by path.
    pub fn window(&self, path: &str) -> Option<Rc<TkWindow>> {
        self.inner.windows.borrow().get(path).cloned()
    }

    /// Looks up a window record by path, or errors like Tk.
    pub fn require_window(&self, path: &str) -> Result<Rc<TkWindow>, Exception> {
        self.window(path)
            .ok_or_else(|| Exception::error(format!("bad window path name \"{path}\"")))
    }

    /// Path of the window with the given X id, if it is one of ours.
    pub fn path_of(&self, xid: WindowId) -> Option<String> {
        self.inner.by_xid.borrow().get(&xid).cloned()
    }

    /// All window paths, sorted.
    pub fn window_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.windows.borrow().keys().cloned().collect();
        v.sort();
        v
    }

    /// Creates a new Tk window (and its X window) at `path`.
    ///
    /// The parent path must already exist; the new window is registered but
    /// left unmapped — geometry managers map it when they place it.
    pub fn make_window(
        &self,
        path: &str,
        class: &str,
        width: u32,
        height: u32,
        border_width: u32,
    ) -> Result<Rc<TkWindow>, Exception> {
        validate_path(path)?;
        if self.inner.windows.borrow().contains_key(path) {
            return Err(Exception::error(format!(
                "window name \"{}\" already exists in parent",
                crate::window::name_of(path)
            )));
        }
        let parent = parent_path(path)
            .ok_or_else(|| Exception::error(format!("bad window path name \"{path}\"")))?;
        let parent_rec = self.require_window(parent)?;
        let xid = self
            .conn()
            .create_window(parent_rec.xid, 0, 0, width, height, border_width)
            .map_err(crate::cache::xerr)?;
        self.select_standard_input(xid);
        let rec = Rc::new(TkWindow::new(path, class, xid));
        rec.width.set(width.max(1));
        rec.height.set(height.max(1));
        rec.req_width.set(width.max(1));
        rec.req_height.set(height.max(1));
        rec.border_width.set(border_width);
        self.inner
            .windows
            .borrow_mut()
            .insert(path.to_string(), rec.clone());
        self.inner.by_xid.borrow_mut().insert(xid, path.to_string());
        Ok(rec)
    }

    /// Destroys a window and all its descendants: Tk records, widget
    /// commands, bindings, pack slots, and the X windows themselves.
    pub fn destroy_window(&self, path: &str) -> Result<(), Exception> {
        self.require_window(path)?;
        // Collect this window and all descendants by path prefix.
        let prefix = if path == "." {
            ".".to_string()
        } else {
            format!("{path}.")
        };
        let doomed: Vec<String> = self
            .inner
            .windows
            .borrow()
            .keys()
            .filter(|p| *p == path || p.starts_with(&prefix))
            .cloned()
            .collect();
        let mut xids = Vec::with_capacity(doomed.len());
        for p in &doomed {
            if let Some(w) = self.window(p) {
                let widget = w.widget.borrow().clone();
                if let Some(widget) = widget {
                    widget.destroyed(self, p);
                }
                self.inner.interp.unregister(p);
                self.inner.bindings.borrow_mut().forget_window(p);
                self.inner.packer.borrow_mut().forget(p);
                self.inner.by_xid.borrow_mut().remove(&w.xid);
                xids.push(w.xid);
            }
            self.inner.windows.borrow_mut().remove(p);
            self.inner.damage.borrow_mut().remove(p);
        }
        // Destroy every X window explicitly: reparented windows (menus)
        // are not X descendants of the subtree root; re-destroying an
        // already-gone id is a no-op.
        for xid in xids {
            self.conn().destroy_window(xid);
        }
        if path == "." {
            if !self.inner.destroyed.get() {
                // Deregister from the send registry and take the comm
                // window down with us: peers' liveness probes (and the
                // DestroyNotify broadcast) must see this application as
                // dead, not as a forever-silent send target.
                crate::send::withdraw(self);
                self.conn().destroy_window(self.inner.comm);
            }
            self.inner.destroyed.set(true);
        }
        Ok(())
    }

    /// Has the application's main window been destroyed?
    pub fn destroyed(&self) -> bool {
        self.inner.destroyed.get()
    }

    // ----- geometry management ----------------------------------------------

    /// `Tk_GeometryRequest`: a widget announces its preferred size; the
    /// geometry manager (or the pseudo window manager, for toplevels)
    /// reacts (Section 3.4).
    pub fn geometry_request(&self, path: &str, width: u32, height: u32) {
        let Some(rec) = self.window(path) else {
            return;
        };
        rec.req_width.set(width.max(1));
        rec.req_height.set(height.max(1));
        let manager = rec.manager.borrow().clone();
        if manager == "pack" {
            if let Some(master) = self.inner.packer.borrow().master_of(path) {
                self.schedule_relayout(&master);
            }
        } else if self.is_toplevel(path) {
            // No real window manager in the simulation: grant the request.
            self.conn().configure_window(
                rec.xid,
                None,
                None,
                Some(width.max(1)),
                Some(height.max(1)),
                None,
            );
        }
    }

    /// Is this path a toplevel (the main window or a Toplevel widget)?
    pub fn is_toplevel(&self, path: &str) -> bool {
        path == "."
            || self
                .window(path)
                .map(|w| w.class == "Toplevel")
                .unwrap_or(false)
    }

    /// Moves/resizes a window (geometry managers call this).
    pub fn place_window(&self, path: &str, x: i32, y: i32, width: u32, height: u32) {
        let Some(rec) = self.window(path) else {
            return;
        };
        let (width, height) = (width.max(1), height.max(1));
        if rec.x.get() == x
            && rec.y.get() == y
            && rec.width.get() == width
            && rec.height.get() == height
            && rec.mapped.get()
        {
            return;
        }
        self.conn()
            .configure_window(rec.xid, Some(x), Some(y), Some(width), Some(height), None);
        if !rec.mapped.get() {
            self.conn().map_window(rec.xid);
        }
    }

    // ----- idle & timer machinery ----------------------------------------------

    /// Schedules a Tcl script to run when the application goes idle.
    pub fn schedule_idle_script(&self, script: &str) {
        self.inner
            .idle
            .borrow_mut()
            .push(IdleTask::Script(script.to_string()));
    }

    /// Schedules a full-widget redraw (deduplicated). Full damage
    /// swallows any rect damage already pending for the path.
    pub fn schedule_redraw(&self, path: &str) {
        self.inner.tracer.instant("damage", path, 0);
        self.inner
            .damage
            .borrow_mut()
            .insert(path.to_string(), Damage::Full);
        self.push_redraw_task(path);
    }

    /// Schedules a widget redraw narrowed to `rect` (widget-relative
    /// coordinates). The rect coalesces into damage already pending for
    /// the path; pending full damage stays full. With damage disabled
    /// this degenerates to [`TkApp::schedule_redraw`].
    pub fn schedule_redraw_damage(&self, path: &str, rect: Rect) {
        if !self.damage_enabled() {
            return self.schedule_redraw(path);
        }
        self.inner.tracer.instant("damage", path, 0);
        {
            let mut damage = self.inner.damage.borrow_mut();
            match damage.get_mut(path) {
                Some(Damage::Full) => {}
                Some(Damage::Rects(list)) => {
                    list.add(rect);
                }
                None => {
                    let mut list = DamageList::new();
                    list.add(rect);
                    damage.insert(path.to_string(), Damage::Rects(list));
                }
            }
        }
        self.push_redraw_task(path);
    }

    /// Records an Expose event's area as pending damage and schedules the
    /// widget's redraw. Widgets call this from their Expose arms; the
    /// rects of a multi-rect Expose batch (`count` > 0) coalesce into the
    /// one scheduled redraw.
    pub fn expose_damage(&self, path: &str, ev: &Event) {
        if let Event::Expose {
            x,
            y,
            width,
            height,
            ..
        } = ev
        {
            self.schedule_redraw_damage(path, Rect::new(*x, *y, *width, *height));
        }
    }

    /// Is damage-narrowed redrawing enabled?
    pub fn damage_enabled(&self) -> bool {
        self.inner.damage_enabled.get()
    }

    /// Turns damage-narrowed redrawing on or off (equivalence tests run
    /// the same script in both modes and compare framebuffers).
    pub fn set_damage(&self, on: bool) {
        self.inner.damage_enabled.set(on);
    }

    /// Is a repaint already pending for `path`? Every schedule path
    /// inserts into the damage map regardless of mode, so this predicate
    /// is mode-independent — widgets use it to decide whether a scroll
    /// blit is safe (blitting would shift not-yet-repainted damage).
    pub fn has_pending_damage(&self, path: &str) -> bool {
        self.inner.damage.borrow().contains_key(path)
    }

    fn push_redraw_task(&self, path: &str) {
        // The first scheduler's span is the redraw's cause; coalesced
        // re-schedules keep it (the span that first dirtied the window).
        let cause = self.inner.tracer.current();
        let mut idle = self.inner.idle.borrow_mut();
        if !idle
            .iter()
            .any(|t| matches!(t, IdleTask::Redraw { path: p, .. } if p == path))
        {
            idle.push(IdleTask::Redraw {
                path: path.to_string(),
                cause,
            });
        }
    }

    /// Schedules a packer relayout of `master` (deduplicated).
    pub fn schedule_relayout(&self, master: &str) {
        let cause = self.inner.tracer.current();
        let mut idle = self.inner.idle.borrow_mut();
        if !idle
            .iter()
            .any(|t| matches!(t, IdleTask::Relayout { master: p, .. } if p == master))
        {
            idle.push(IdleTask::Relayout {
                master: master.to_string(),
                cause,
            });
        }
    }

    /// Schedules `script` to run `ms` virtual milliseconds from now;
    /// returns a timer id for `after cancel`-style use.
    pub fn schedule_after(&self, ms: u64, script: &str) -> u64 {
        let id = self.inner.next_timer.get() + 1;
        self.inner.next_timer.set(id);
        self.inner.timers.borrow_mut().push(Timer {
            id,
            deadline: self.inner.env.now() + ms,
            script: script.to_string(),
        });
        id
    }

    /// Cancels a timer; true if it existed.
    pub fn cancel_after(&self, id: u64) -> bool {
        let mut timers = self.inner.timers.borrow_mut();
        let before = timers.len();
        timers.retain(|t| t.id != id);
        timers.len() != before
    }

    /// Runs timers whose deadline has passed.
    pub fn run_due_timers(&self) {
        let now = self.inner.env.now();
        loop {
            let due: Option<Timer> = {
                let mut timers = self.inner.timers.borrow_mut();
                timers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.deadline <= now)
                    .min_by_key(|(_, t)| (t.deadline, t.id))
                    .map(|(i, _)| i)
                    .map(|i| timers.remove(i))
            };
            match due {
                Some(t) => {
                    self.inner.obs.incr("timers.fired");
                    self.eval_background(&t.script);
                }
                None => break,
            }
        }
    }

    /// Registers a file handler: `script` runs whenever `path` appears or
    /// its contents change (checked during event processing). Returns an
    /// id for [`TkApp::delete_file_handler`].
    pub fn create_file_handler(&self, path: impl Into<std::path::PathBuf>, script: &str) -> u64 {
        let id = self.inner.next_timer.get() + 1;
        self.inner.next_timer.set(id);
        self.inner.file_handlers.borrow_mut().push(FileHandler {
            id,
            path: path.into(),
            script: script.to_string(),
            last: None,
        });
        id
    }

    /// Removes a file handler; true if it existed.
    pub fn delete_file_handler(&self, id: u64) -> bool {
        let mut handlers = self.inner.file_handlers.borrow_mut();
        let before = handlers.len();
        handlers.retain(|h| h.id != id);
        handlers.len() != before
    }

    /// Polls the registered file handlers, firing scripts for files whose
    /// state changed. Returns true if any fired.
    pub fn poll_file_handlers(&self) -> bool {
        let mut due: Vec<String> = Vec::new();
        {
            let mut handlers = self.inner.file_handlers.borrow_mut();
            for h in handlers.iter_mut() {
                let state = std::fs::metadata(&h.path)
                    .ok()
                    .map(|m| (m.len(), m.modified().unwrap_or(std::time::UNIX_EPOCH)));
                if let Some(state) = state {
                    if h.last != Some(state) {
                        h.last = Some(state);
                        due.push(h.script.clone());
                    }
                }
            }
        }
        let fired = !due.is_empty();
        for script in due {
            self.eval_background(&script);
        }
        fired
    }

    /// Runs queued idle tasks. Returns true if any ran.
    pub fn run_idle_tasks(&self) -> bool {
        let mut ran = false;
        // Idle tasks may schedule more idle tasks; loop until drained but
        // bound the number of generations to catch runaway loops.
        for _ in 0..100 {
            let tasks: Vec<IdleTask> = self.inner.idle.borrow_mut().drain(..).collect();
            if tasks.is_empty() {
                break;
            }
            ran = true;
            for task in tasks {
                match task {
                    IdleTask::Script(s) => {
                        self.inner.obs.incr("idle.scripts");
                        self.eval_background(&s);
                    }
                    IdleTask::Redraw { path, cause } => {
                        self.inner.obs.incr("idle.redraws");
                        let damage = self.inner.damage.borrow_mut().remove(&path);
                        if let Some(rec) = self.window(&path) {
                            let widget = rec.widget.borrow().clone();
                            if let Some(w) = widget {
                                // Both modes send the same request stream
                                // (SetClip, the widget's draws, ClearClip) so
                                // seq-keyed fault plans hit the same requests;
                                // only the clip payload differs. An empty rect
                                // list means unclipped — the full redraw.
                                let rects = match damage {
                                    Some(Damage::Rects(mut list)) if self.damage_enabled() => {
                                        list.take()
                                    }
                                    _ => Vec::new(),
                                };
                                let span = self.inner.obs.span("redraw_ns");
                                let _scope = self.inner.tracer.scope(cause);
                                let _tspan = self.inner.tracer.begin("redraw", &*path, 0);
                                self.conn().set_clip(rec.xid, rects);
                                w.redraw(self, &path);
                                self.conn().clear_clip(rec.xid);
                                span.finish();
                            }
                        }
                    }
                    IdleTask::Relayout { master, cause } => {
                        self.inner.obs.incr("idle.relayouts");
                        let _scope = self.inner.tracer.scope(cause);
                        crate::pack::relayout(self, &master);
                    }
                }
            }
        }
        ran
    }

    /// Processes every queued X event (and polls file handlers, which are
    /// part of the Section 3.2 dispatcher). Returns true if any work ran.
    /// Noticing a dead connection tears the application down cleanly.
    pub fn process_pending(&self) -> bool {
        if !self.conn().alive() {
            return self.connection_died();
        }
        let mut any = false;
        while let Some(ev) = self.conn().poll_event() {
            any = true;
            self.dispatch_event(&ev);
        }
        if !self.inner.file_handlers.borrow().is_empty() && self.poll_file_handlers() {
            any = true;
        }
        any
    }

    /// Clean teardown after the X connection died (a real Tk would call
    /// `exit`): deregister from the `send` registry, destroy the window
    /// tree records, and mark the application destroyed. Returns true the
    /// first time (work was done), false on later calls.
    fn connection_died(&self) -> bool {
        if self.inner.destroyed.get() {
            return false;
        }
        self.inner.obs.incr("connection.dead");
        crate::send::withdraw_post_mortem(self);
        // The server already reclaimed the X windows at close-down; this
        // clears the Tk-side records (widget commands, bindings, pack
        // slots) and sets the destroyed flag.
        let _ = self.destroy_window(".");
        self.inner.destroyed.set(true);
        true
    }

    /// Processes events and idle tasks until both are drained (`update`).
    ///
    /// Bounded: an idle handler that perpetually re-schedules itself (the
    /// classic `DoWhenIdle` footgun) makes some progress and then returns
    /// instead of hanging the application.
    pub fn update(&self) {
        let span = self.inner.obs.span("update_ns");
        let _tspan = self.inner.tracer.begin("update", "", 0);
        for _ in 0..100 {
            let events = self.process_pending();
            let idle = self.run_idle_tasks();
            if !events && !idle {
                break;
            }
        }
        // Flush before going back to blocking/idle: any one-way requests
        // the idle handlers queued must reach the display now.
        self.conn().flush();
        span.finish();
    }

    /// Evaluates a script whose errors are reported through `tkerror`
    /// rather than propagated (bindings, timers, idle scripts).
    pub fn eval_background(&self, script: &str) {
        // The span detail is a short, deterministic script prefix (ASCII
        // only, so truncation never splits a code point).
        let prefix: String = script.chars().take(32).collect();
        let _tspan = self.inner.tracer.begin("eval", prefix, 0);
        if let Err(e) = self.inner.interp.eval(script) {
            if e.code != tcl::Code::Error {
                return; // break/continue/return at background level: ignore
            }
            self.inner.obs.incr("background.errors");
            let msg = e.msg.clone();
            if self.inner.interp.command("tkerror").is_some() {
                let call = tcl::format_list(&["tkerror".to_string(), msg]);
                let _ = self.inner.interp.eval(&call);
            } else {
                self.inner
                    .interp
                    .write_output(&format!("background error: {msg}\n"));
            }
        }
    }

    /// Dispatches one X event: structure cache, send/selection protocol,
    /// the widget's built-in handler, then user bindings.
    pub fn dispatch_event(&self, ev: &Event) {
        self.inner.obs.incr("events.dispatched");
        let dispatch_span = self.inner.obs.span("dispatch_ns");
        let _tspan = self.inner.tracer.begin("dispatch", ev.name(), 0);
        self.dispatch_event_inner(ev);
        dispatch_span.finish();
    }

    fn dispatch_event_inner(&self, ev: &Event) {
        // Selection protocol events (including SelectionNotify answers
        // that land on the comm window).
        match ev {
            Event::SelectionRequest { .. }
            | Event::SelectionClear { .. }
            | Event::SelectionNotify { .. } => {
                crate::selection::handle_event(self, ev);
                return;
            }
            _ => {}
        }
        // Send protocol traffic arrives on the comm window.
        if ev.window() == self.inner.comm {
            crate::send::handle_comm_event(self, ev);
            return;
        }
        // A DestroyNotify may be for a peer's comm window: fail any
        // in-flight sends aimed at it fast instead of waiting out the
        // deadline. (No-op unless the window matches a pending send.)
        if let Event::DestroyNotify { window } = ev {
            crate::send::handle_peer_destroyed(self, *window);
        }
        let Some(path) = self.path_of(ev.window()) else {
            return;
        };
        // Structure cache updates.
        if let Some(rec) = self.window(&path) {
            match ev {
                Event::ConfigureNotify {
                    x,
                    y,
                    width,
                    height,
                    border_width,
                    ..
                } => {
                    rec.x.set(*x);
                    rec.y.set(*y);
                    let resized = rec.width.get() != *width || rec.height.get() != *height;
                    rec.width.set(*width);
                    rec.height.set(*height);
                    rec.border_width.set(*border_width);
                    if resized {
                        // A resized master must re-place its packed slaves.
                        if self.inner.packer.borrow().has_slaves(&path) {
                            self.schedule_relayout(&path);
                        }
                        self.schedule_redraw(&path);
                    }
                }
                Event::MapNotify { .. } => rec.mapped.set(true),
                Event::UnmapNotify { .. } => rec.mapped.set(false),
                Event::DestroyNotify { .. } => {
                    // Destroyed from outside `destroy` (e.g. a parent died
                    // server-side): clean up our records.
                    let _ = self.destroy_window(&path);
                    return;
                }
                _ => {}
            }
            // The widget's built-in (C-level, here Rust-level) handler.
            let widget = rec.widget.borrow().clone();
            if let Some(widget) = widget {
                widget.event(self, &path, ev);
            }
        }
        // User bindings (Figure 7).
        let class = self
            .window(&path)
            .map(|r| r.class.clone())
            .unwrap_or_default();
        if let Some(info) = EventInfo::from_event(ev) {
            let script = self
                .inner
                .bindings
                .borrow_mut()
                .match_event(&path, &class, &info);
            if let Some(script) = script {
                self.inner.obs.incr("bind.matches");
                let script = percent_substitute(&script, &info, &path);
                let span = self.inner.obs.span("bind.script_ns");
                let _tspan =
                    self.inner
                        .tracer
                        .begin("bind", format!("{path} {}", info.descriptor()), 0);
                self.eval_background(&script);
                span.finish();
            } else {
                self.inner.obs.incr("bind.misses");
            }
        }
    }

    /// Queries the option database for `path`'s option `name`/`class`,
    /// following Section 3.5's name/class matching.
    pub fn option_get(&self, path: &str, name: &str, class: &str) -> Option<String> {
        let comps = crate::window::components(path);
        let mut names: Vec<&str> = comps.clone();
        names.push(name);
        // The class list parallels the name list: the class of each window
        // on the path, then the option's class.
        let mut classes: Vec<String> = Vec::with_capacity(comps.len() + 1);
        let mut cur = String::new();
        for comp in &comps {
            cur.push('.');
            cur.push_str(comp);
            classes.push(
                self.window(&cur)
                    .map(|w| w.class.clone())
                    .unwrap_or_else(|| "Frame".to_string()),
            );
        }
        classes.push(class.to_string());
        let class_refs: Vec<&str> = classes.iter().map(String::as_str).collect();
        self.inner.options.borrow().get(&names, &class_refs)
    }

    /// Registers a Tcl command whose closure receives this app (weakly,
    /// so the interpreter's registry does not keep the app alive).
    pub fn register_command<F>(&self, name: &str, f: F)
    where
        F: Fn(&TkApp, &Interp, &[String]) -> TclResult + 'static,
    {
        let weak = Rc::downgrade(&self.inner);
        self.inner.interp.register(name, move |interp, argv| {
            let Some(inner) = weak.upgrade() else {
                return Err(Exception::error("application has been destroyed"));
            };
            let app = TkApp { inner };
            f(&app, interp, argv)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_has_main_window() {
        let env = TkEnv::new();
        let app = env.app("test");
        let main = app.window(".").unwrap();
        assert_eq!(main.class, "Toplevel");
        assert!(app.path_of(main.xid).is_some());
    }

    #[test]
    fn make_window_validates_parent() {
        let env = TkEnv::new();
        let app = env.app("t");
        assert!(app.make_window(".a.b", "Frame", 10, 10, 0).is_err());
        app.make_window(".a", "Frame", 10, 10, 0).unwrap();
        app.make_window(".a.b", "Frame", 10, 10, 0).unwrap();
        // Duplicate names rejected.
        assert!(app.make_window(".a", "Frame", 10, 10, 0).is_err());
    }

    #[test]
    fn destroy_removes_subtree() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.make_window(".a", "Frame", 10, 10, 0).unwrap();
        app.make_window(".a.b", "Frame", 10, 10, 0).unwrap();
        app.make_window(".c", "Frame", 10, 10, 0).unwrap();
        app.destroy_window(".a").unwrap();
        assert!(app.window(".a").is_none());
        assert!(app.window(".a.b").is_none());
        assert!(app.window(".c").is_some());
    }

    #[test]
    fn structure_cache_tracks_configure() {
        let env = TkEnv::new();
        let app = env.app("t");
        let rec = app.make_window(".f", "Frame", 30, 40, 0).unwrap();
        app.conn()
            .configure_window(rec.xid, Some(7), Some(8), Some(50), Some(60), None);
        app.process_pending();
        assert_eq!(rec.x.get(), 7);
        assert_eq!(rec.width.get(), 50);
        assert_eq!(rec.height.get(), 60);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set order {}").unwrap();
        app.schedule_after(200, "lappend order b");
        app.schedule_after(100, "lappend order a");
        env.advance(50);
        assert_eq!(app.eval("set order").unwrap(), "");
        env.advance(100);
        assert_eq!(app.eval("set order").unwrap(), "a");
        env.advance(100);
        assert_eq!(app.eval("set order").unwrap(), "a b");
    }

    #[test]
    fn cancel_timer() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set hits 0").unwrap();
        let id = app.schedule_after(10, "incr hits");
        assert!(app.cancel_after(id));
        assert!(!app.cancel_after(id));
        env.advance(100);
        assert_eq!(app.eval("set hits").unwrap(), "0");
    }

    #[test]
    fn idle_scripts_run_on_update() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set x 0").unwrap();
        app.schedule_idle_script("set x 1");
        assert_eq!(app.eval("set x").unwrap(), "0");
        app.update();
        assert_eq!(app.eval("set x").unwrap(), "1");
    }

    #[test]
    fn background_errors_go_to_tkerror() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("proc tkerror {msg} {global caught; set caught $msg}")
            .unwrap();
        app.schedule_idle_script("error boom");
        app.update();
        assert_eq!(app.eval("set caught").unwrap(), "boom");
    }

    #[test]
    fn register_command_receives_app() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.register_command("appname", |app, _i, _argv| Ok(app.name()));
        assert_eq!(app.eval("appname").unwrap(), "t");
    }

    #[test]
    fn option_get_resolves_classes() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.make_window(".b", "Button", 10, 10, 0).unwrap();
        app.inner
            .options
            .borrow_mut()
            .add("*Button.background", "red", 60);
        assert_eq!(
            app.option_get(".b", "background", "Background"),
            Some("red".into())
        );
        assert_eq!(app.option_get(".b", "foreground", "Foreground"), None);
    }
}

#[cfg(test)]
mod file_handler_tests {
    use super::*;

    #[test]
    fn file_handler_fires_on_appearance_and_change() {
        let env = TkEnv::new();
        let app = env.app("t");
        let dir = std::env::temp_dir().join("rtk_filehandler_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watched.log");
        let _ = std::fs::remove_file(&path);
        app.eval("set fires 0").unwrap();
        let id = app.create_file_handler(&path, "incr fires");
        app.update();
        assert_eq!(app.eval("set fires").unwrap(), "0", "no file yet");
        std::fs::write(&path, "first").unwrap();
        app.update();
        assert_eq!(app.eval("set fires").unwrap(), "1", "file appeared");
        app.update();
        assert_eq!(app.eval("set fires").unwrap(), "1", "no change, no fire");
        std::fs::write(&path, "second-longer").unwrap();
        app.update();
        assert_eq!(app.eval("set fires").unwrap(), "2", "contents changed");
        assert!(app.delete_file_handler(id));
        std::fs::write(&path, "third!").unwrap();
        app.update();
        assert_eq!(app.eval("set fires").unwrap(), "2", "handler removed");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn connection_death_tears_the_application_down() {
        let env = TkEnv::new();
        let a = env.app("doomed");
        let b = env.app("survivor");
        a.eval("button .b -text hi").unwrap();
        a.update();
        assert!(env.application_names().contains(&"doomed".to_string()));
        let seq = a.conn().sequence();
        env.display().with_server(|s| {
            s.install_fault_plan(
                xsim::FaultPlan::default().kill_at(a.conn().client_id().0, seq + 1),
            )
        });
        // The kill fires at flush time, so the command itself may complete
        // (the death is asynchronous, as with a real X socket).
        let _ = a.eval("frame .f");
        env.dispatch_all();
        assert!(a.destroyed(), "app must notice its dead connection");
        // The registry no longer lists the dead app; the survivor still works.
        let names = crate::send::interps(&b);
        assert!(!names.contains(&"doomed".to_string()), "{names:?}");
        assert!(names.contains(&"survivor".to_string()), "{names:?}");
        b.eval("button .b -text fine").unwrap();
        b.update();
        // Further scripting in the dead app fails cleanly, never panics.
        assert!(a.eval("frame .g").is_err());
    }

    #[test]
    fn protocol_error_in_command_becomes_tcl_error() {
        let env = TkEnv::new();
        let app = env.app("t");
        let seq = app.conn().sequence();
        env.display().with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadWindow,
            ))
        });
        let err = app.eval("focus").unwrap_err();
        assert!(err.msg.contains("X protocol error"), "{}", err.msg);
        assert!(err.msg.contains("BadWindow"), "{}", err.msg);
        // The app survives and keeps working.
        app.eval("focus").unwrap();
    }

    #[test]
    fn background_protocol_error_routes_to_tkerror() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("proc tkerror {msg} {global caught; set caught $msg}")
            .unwrap();
        let seq = app.conn().sequence();
        env.display().with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadAtom,
            ))
        });
        app.eval_background("focus");
        let caught = app.eval("set caught").unwrap();
        assert!(caught.contains("X protocol error"), "{caught}");
    }
}
