//! Drawing helpers shared by widgets: reliefs, anchors, and 3-D borders.

use tcl::Exception;
use xsim::{Connection, GcValues, WindowId};

use crate::cache::{Border, ResourceCache};

/// The 3-D appearance of a widget's border (the paper's Section 4 example
/// flips a button from `raised` to `sunken`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Relief {
    #[default]
    Flat,
    Raised,
    Sunken,
    Groove,
    Ridge,
}

impl Relief {
    /// Parses a relief name.
    pub fn parse(s: &str) -> Result<Relief, Exception> {
        Ok(match s {
            "flat" => Relief::Flat,
            "raised" => Relief::Raised,
            "sunken" => Relief::Sunken,
            "groove" => Relief::Groove,
            "ridge" => Relief::Ridge,
            other => {
                return Err(Exception::error(format!(
                    "bad relief type \"{other}\": must be flat, groove, raised, ridge, or sunken"
                )))
            }
        })
    }

    /// The textual name.
    pub fn name(self) -> &'static str {
        match self {
            Relief::Flat => "flat",
            Relief::Raised => "raised",
            Relief::Sunken => "sunken",
            Relief::Groove => "groove",
            Relief::Ridge => "ridge",
        }
    }
}

/// Where content sits within its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Anchor {
    N,
    S,
    E,
    W,
    Ne,
    Nw,
    Se,
    Sw,
    #[default]
    Center,
}

impl Anchor {
    /// Parses an anchor name (`n`, `sw`, `center`, ...).
    pub fn parse(s: &str) -> Result<Anchor, Exception> {
        Ok(match s {
            "n" => Anchor::N,
            "s" => Anchor::S,
            "e" => Anchor::E,
            "w" => Anchor::W,
            "ne" => Anchor::Ne,
            "nw" => Anchor::Nw,
            "se" => Anchor::Se,
            "sw" => Anchor::Sw,
            "center" => Anchor::Center,
            other => {
                return Err(Exception::error(format!(
                    "bad anchor position \"{other}\": must be n, ne, e, se, s, sw, w, nw, or center"
                )))
            }
        })
    }

    /// The textual name.
    pub fn name(self) -> &'static str {
        match self {
            Anchor::N => "n",
            Anchor::S => "s",
            Anchor::E => "e",
            Anchor::W => "w",
            Anchor::Ne => "ne",
            Anchor::Nw => "nw",
            Anchor::Se => "se",
            Anchor::Sw => "sw",
            Anchor::Center => "center",
        }
    }

    /// Positions a `(cw, ch)` box inside a `(w, h)` area with `pad` margin;
    /// returns the box origin.
    pub fn place(self, w: i32, h: i32, cw: i32, ch: i32, pad: i32) -> (i32, i32) {
        let x = match self {
            Anchor::W | Anchor::Nw | Anchor::Sw => pad,
            Anchor::E | Anchor::Ne | Anchor::Se => w - cw - pad,
            _ => (w - cw) / 2,
        };
        let y = match self {
            Anchor::N | Anchor::Ne | Anchor::Nw => pad,
            Anchor::S | Anchor::Se | Anchor::Sw => h - ch - pad,
            _ => (h - ch) / 2,
        };
        (x, y)
    }
}

/// Draws a 3-D bevel border of width `bw` just inside the rectangle
/// `(x, y, w, h)` of the window, in the given relief.
#[allow(clippy::too_many_arguments)]
pub fn draw_3d_rect(
    conn: &Connection,
    cache: &ResourceCache,
    win: WindowId,
    border: Border,
    x: i32,
    y: i32,
    w: u32,
    h: u32,
    bw: u32,
    relief: Relief,
) {
    if bw == 0 || w == 0 || h == 0 {
        return;
    }
    let (top, bottom) = match relief {
        Relief::Flat => (border.bg, border.bg),
        Relief::Raised => (border.light, border.dark),
        Relief::Sunken => (border.dark, border.light),
        // Groove/ridge use half-width double bevels; approximated with a
        // single bevel pair in opposite order.
        Relief::Groove => (border.dark, border.light),
        Relief::Ridge => (border.light, border.dark),
    };
    let top_gc = cache.gc(
        conn,
        GcValues {
            foreground: top,
            ..Default::default()
        },
    );
    let bottom_gc = cache.gc(
        conn,
        GcValues {
            foreground: bottom,
            ..Default::default()
        },
    );
    let (w, h) = (w as i32, h as i32);
    for i in 0..bw as i32 {
        // Top and left edges.
        conn.draw_line(win, top_gc, x + i, y + i, x + w - 1 - i, y + i);
        conn.draw_line(win, top_gc, x + i, y + i, x + i, y + h - 1 - i);
        // Bottom and right edges.
        conn.draw_line(
            win,
            bottom_gc,
            x + i,
            y + h - 1 - i,
            x + w - 1 - i,
            y + h - 1 - i,
        );
        conn.draw_line(
            win,
            bottom_gc,
            x + w - 1 - i,
            y + i,
            x + w - 1 - i,
            y + h - 1 - i,
        );
    }
}

/// Parses a screen-distance option (pixels; Tk's `c`/`m`/`i` suffixes are
/// converted at 80 dpi).
pub fn parse_pixels(s: &str) -> Result<i64, Exception> {
    let t = s.trim();
    let bad = || Exception::error(format!("bad screen distance \"{s}\""));
    if t.is_empty() {
        return Err(bad());
    }
    let (num, suffix) = match t.char_indices().last() {
        Some((i, c)) if matches!(c, 'c' | 'm' | 'i' | 'p') => (&t[..i], Some(c)),
        _ => (t, None),
    };
    let v: f64 = num.trim().parse().map_err(|_| bad())?;
    let pixels = match suffix {
        None => v,
        Some('c') => v * 80.0 / 2.54, // centimeters
        Some('m') => v * 80.0 / 25.4, // millimeters
        Some('i') => v * 80.0,        // inches
        Some('p') => v * 80.0 / 72.0, // points
        _ => unreachable!(),
    };
    Ok(pixels.round() as i64)
}

/// Parses a `WIDTHxHEIGHT` geometry option (the `-geometry 20x20` of the
/// Figure 9 listbox).
pub fn parse_geometry(s: &str) -> Result<(u32, u32), Exception> {
    let bad = || Exception::error(format!("bad geometry \"{s}\": expected widthxheight"));
    let (w, h) = s.split_once('x').ok_or_else(bad)?;
    Ok((
        w.trim().parse().map_err(|_| bad())?,
        h.trim().parse().map_err(|_| bad())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relief_parse_and_name() {
        assert_eq!(Relief::parse("raised").unwrap(), Relief::Raised);
        assert_eq!(Relief::parse("sunken").unwrap().name(), "sunken");
        assert!(Relief::parse("bogus").is_err());
    }

    #[test]
    fn anchor_placement() {
        assert_eq!(Anchor::Center.place(100, 50, 20, 10, 0), (40, 20));
        assert_eq!(Anchor::Nw.place(100, 50, 20, 10, 2), (2, 2));
        assert_eq!(Anchor::Se.place(100, 50, 20, 10, 2), (78, 38));
        assert_eq!(Anchor::E.place(100, 50, 20, 10, 0), (80, 20));
    }

    #[test]
    fn anchor_parse() {
        assert_eq!(Anchor::parse("nw").unwrap(), Anchor::Nw);
        assert!(Anchor::parse("middle").is_err());
    }

    #[test]
    fn pixel_distances() {
        assert_eq!(parse_pixels("15").unwrap(), 15);
        assert_eq!(parse_pixels("-3").unwrap(), -3);
        assert_eq!(parse_pixels("1i").unwrap(), 80);
        assert_eq!(parse_pixels("2.54c").unwrap(), 80);
        assert!(parse_pixels("abc").is_err());
        assert!(parse_pixels("").is_err());
    }

    #[test]
    fn geometry_parse() {
        assert_eq!(parse_geometry("20x10").unwrap(), (20, 10));
        assert!(parse_geometry("20").is_err());
        assert!(parse_geometry("ax10").is_err());
    }

    #[test]
    fn bevel_draws_light_and_dark() {
        use crate::cache::ResourceCache;
        let d = xsim::Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let w = conn.create_window(conn.root(), 0, 0, 20, 20, 0).unwrap();
        conn.map_window(w);
        let border = cache.border(&conn, "gray").unwrap();
        draw_3d_rect(&conn, &cache, w, border, 0, 0, 20, 20, 2, Relief::Raised);
        let light = conn.query_color(border.light).unwrap();
        let dark = conn.query_color(border.dark).unwrap();
        d.with_server(|s| {
            let surf = s.window_surface(w).unwrap();
            assert_eq!(surf.pixel(0, 0), light);
            assert_eq!(surf.pixel(19, 19), dark);
        });
    }
}
