//! Tk window records and path names (Section 3.1).
//!
//! Every Tk window has a *name* unique among its siblings, a *class*, and
//! a *path name* like `.a.b.c` that identifies it within the application.
//! `"."` is the application's main window. The record also carries the
//! structure cache: geometry fields mirrored from the server so widgets
//! and `winfo` never need a round trip to read them.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tcl::Exception;
use xsim::WindowId;

use crate::widget::WidgetOps;

/// A Tk window: path name, class, server window, cached structure, and the
/// widget (if any) attached to it.
pub struct TkWindow {
    /// Full path name (`.a.b`).
    pub path: String,
    /// Widget class (`Button`, `Frame`, ...).
    pub class: String,
    /// The server-side window.
    pub xid: WindowId,
    /// Structure cache: position in the parent.
    pub x: Cell<i32>,
    /// Structure cache: position in the parent.
    pub y: Cell<i32>,
    /// Structure cache: current interior width.
    pub width: Cell<u32>,
    /// Structure cache: current interior height.
    pub height: Cell<u32>,
    /// Structure cache: border width.
    pub border_width: Cell<u32>,
    /// Structure cache: is the window mapped?
    pub mapped: Cell<bool>,
    /// The size the widget asked its geometry manager for.
    pub req_width: Cell<u32>,
    /// The size the widget asked its geometry manager for.
    pub req_height: Cell<u32>,
    /// Width of the widget's internal border (its `-borderwidth`): space
    /// geometry managers must leave free inside the window's edges.
    pub internal_border: Cell<u32>,
    /// Name of the geometry manager controlling this window ("" = none).
    pub manager: RefCell<String>,
    /// The widget implementation attached to this window.
    pub widget: RefCell<Option<Rc<dyn WidgetOps>>>,
}

impl TkWindow {
    /// Creates a record with geometry zeroed (filled in by the caller).
    pub fn new(path: &str, class: &str, xid: WindowId) -> TkWindow {
        TkWindow {
            path: path.to_string(),
            class: class.to_string(),
            xid,
            x: Cell::new(0),
            y: Cell::new(0),
            width: Cell::new(1),
            height: Cell::new(1),
            border_width: Cell::new(0),
            mapped: Cell::new(false),
            req_width: Cell::new(1),
            req_height: Cell::new(1),
            internal_border: Cell::new(0),
            manager: RefCell::new(String::new()),
            widget: RefCell::new(None),
        }
    }

    /// The window's own name (last path component).
    pub fn name(&self) -> &str {
        name_of(&self.path)
    }
}

/// The parent path of a window path (`".a.b"` → `".a"`, `".a"` → `"."`).
/// The root (`"."`) has no parent.
pub fn parent_path(path: &str) -> Option<&str> {
    if path == "." {
        return None;
    }
    match path.rfind('.') {
        Some(0) => Some("."),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

/// The final component of a path (`".a.b"` → `"b"`, `"."` → `""`).
pub fn name_of(path: &str) -> &str {
    if path == "." {
        return "";
    }
    match path.rfind('.') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// Joins a parent path and a child name.
pub fn join(parent: &str, name: &str) -> String {
    if parent == "." {
        format!(".{name}")
    } else {
        format!("{parent}.{name}")
    }
}

/// Validates a new window path name: must start with `.`, have non-empty
/// components, and components must not start with an upper-case letter
/// (upper-case names are reserved for classes, as in Tk).
pub fn validate_path(path: &str) -> Result<(), Exception> {
    if path == "." {
        return Ok(());
    }
    if !path.starts_with('.') {
        return Err(Exception::error(format!(
            "bad window path name \"{path}\": must start with \".\""
        )));
    }
    for comp in path[1..].split('.') {
        if comp.is_empty() {
            return Err(Exception::error(format!(
                "bad window path name \"{path}\": empty component"
            )));
        }
        if comp.chars().next().unwrap().is_ascii_uppercase() {
            return Err(Exception::error(format!(
                "window name \"{comp}\" can't start with an upper-case letter"
            )));
        }
    }
    Ok(())
}

/// Splits a path into its components, excluding the root
/// (`".a.b"` → `["a", "b"]`, `"."` → `[]`).
pub fn components(path: &str) -> Vec<&str> {
    if path == "." {
        return Vec::new();
    }
    path[1..].split('.').collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_paths() {
        assert_eq!(parent_path(".a.b.c"), Some(".a.b"));
        assert_eq!(parent_path(".a"), Some("."));
        assert_eq!(parent_path("."), None);
    }

    #[test]
    fn names() {
        assert_eq!(name_of(".a.b.c"), "c");
        assert_eq!(name_of(".a"), "a");
        assert_eq!(name_of("."), "");
    }

    #[test]
    fn joins() {
        assert_eq!(join(".", "a"), ".a");
        assert_eq!(join(".a", "b"), ".a.b");
    }

    #[test]
    fn validation() {
        assert!(validate_path(".").is_ok());
        assert!(validate_path(".a.b").is_ok());
        assert!(validate_path("a").is_err());
        assert!(validate_path("..a").is_err());
        assert!(validate_path(".a.").is_err());
        assert!(validate_path(".A").is_err());
        assert!(validate_path(".a.Bad").is_err());
    }

    #[test]
    fn component_lists() {
        assert_eq!(components(".a.b.c"), vec!["a", "b", "c"]);
        assert!(components(".").is_empty());
    }

    #[test]
    fn window_record_name() {
        let w = TkWindow::new(".x.y", "Button", xsim::Xid(5));
        assert_eq!(w.name(), "y");
        assert_eq!(w.class, "Button");
    }
}
