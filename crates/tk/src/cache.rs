//! Resource caches (Section 3.3).
//!
//! Allocating X resources requires round trips to the server, so Tk caches
//! them per application, indexed by their *textual descriptions* — color
//! names like `MediumSeaGreen`, cursor names like `coffee_mug`, font
//! names — and shares one server object among all uses. Given a resource,
//! the cache can also return the textual name it was created from, which
//! is how widgets report their configuration in human-readable form.
//!
//! The cache can be disabled (`set_enabled(false)`) for the ablation
//! benchmark that reproduces the section's claim about server traffic.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use tcl::Exception;
use xsim::{Connection, CursorId, FontId, FontMetrics, GcId, GcValues, Pixel, XError};

/// Converts a protocol error into a Tcl exception so it reaches scripts
/// (and ultimately `tkerror`) instead of panicking the process. A dead
/// connection — the server killed this client after wire corruption, or
/// a sync watchdog fired — gets its own message so scripts (and the chaos
/// harness) can tell a broken transport from an ordinary request error.
pub fn xerr(e: XError) -> Exception {
    if e.code == xsim::XErrorCode::ConnectionDead {
        return Exception::error("X connection broken".to_string());
    }
    Exception::error(format!("X protocol error: {e}"))
}

/// Runs a connection operation, retrying it exactly once when the server
/// answers with a transient allocation error (`BadValue`/`BadAlloc`).
/// Callers invalidate any stale cache entry before retrying.
fn retry_once<T>(mut f: impl FnMut() -> Result<T, XError>) -> Result<T, XError> {
    match f() {
        Err(e) if e.retryable() => f(),
        r => r,
    }
}

/// A three-shade border derived from a background color, used for the 3-D
/// reliefs of Motif-like widgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Border {
    /// The background itself.
    pub bg: Pixel,
    /// A lighter shade (top/left bevel of a raised relief).
    pub light: Pixel,
    /// A darker shade (bottom/right bevel).
    pub dark: Pixel,
}

/// Hit/miss counters for one cache class. A disabled cache counts every
/// lookup as a miss, which is exactly what the ablation experiment wants
/// to see.
#[derive(Default)]
struct ClassStats {
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl ClassStats {
    fn hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    fn miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }
}

/// The cache classes reported by [`ResourceCache::stats`], in order.
pub const CACHE_CLASSES: [&str; 6] = ["color", "font", "cursor", "border", "bitmap", "gc"];

/// Per-application resource caches.
pub struct ResourceCache {
    enabled: Cell<bool>,
    colors: RefCell<HashMap<String, Pixel>>,
    color_names: RefCell<HashMap<Pixel, String>>,
    fonts: RefCell<HashMap<String, (FontId, FontMetrics)>>,
    font_names: RefCell<HashMap<FontId, String>>,
    cursors: RefCell<HashMap<String, CursorId>>,
    borders: RefCell<HashMap<String, Border>>,
    gcs: RefCell<HashMap<(Pixel, Pixel, u32, FontId), GcId>>,
    bitmaps: RefCell<HashMap<String, (xsim::BitmapId, u32, u32)>>,
    stats: [ClassStats; 6],
}

impl Default for ResourceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceCache {
    /// Creates an empty, enabled cache.
    pub fn new() -> ResourceCache {
        ResourceCache {
            enabled: Cell::new(true),
            colors: RefCell::new(HashMap::new()),
            color_names: RefCell::new(HashMap::new()),
            fonts: RefCell::new(HashMap::new()),
            font_names: RefCell::new(HashMap::new()),
            cursors: RefCell::new(HashMap::new()),
            borders: RefCell::new(HashMap::new()),
            gcs: RefCell::new(HashMap::new()),
            bitmaps: RefCell::new(HashMap::new()),
            stats: Default::default(),
        }
    }

    /// Enables or disables caching (ablation experiments).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Is the cache enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    fn class(&self, name: &str) -> &ClassStats {
        let i = CACHE_CLASSES
            .iter()
            .position(|c| *c == name)
            .expect("known class");
        &self.stats[i]
    }

    /// Hit/miss counts per cache class, in [`CACHE_CLASSES`] order, as
    /// `(class, hits, misses)`.
    pub fn stats(&self) -> Vec<(&'static str, u64, u64)> {
        CACHE_CLASSES
            .iter()
            .zip(&self.stats)
            .map(|(c, s)| (*c, s.hits.get(), s.misses.get()))
            .collect()
    }

    /// Total hits across every class.
    pub fn hits(&self) -> u64 {
        self.stats.iter().map(|s| s.hits.get()).sum()
    }

    /// Total misses across every class.
    pub fn misses(&self) -> u64 {
        self.stats.iter().map(|s| s.misses.get()).sum()
    }

    /// Zeroes all hit/miss counters (cached entries stay).
    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.hits.set(0);
            s.misses.set(0);
        }
    }

    /// JSON object `{"color":{"hits":..,"misses":..},...}`.
    pub fn stats_json(&self) -> String {
        let mut o = rtk_obs::json::Object::new();
        for (class, hits, misses) in self.stats() {
            let mut c = rtk_obs::json::Object::new();
            c.field_u64("hits", hits);
            c.field_u64("misses", misses);
            o.field_raw(class, &c.build());
        }
        o.build()
    }

    /// Resolves a color name to a pixel, consulting the cache first.
    pub fn color(&self, conn: &Connection, name: &str) -> Result<Pixel, Exception> {
        let key = name.to_ascii_lowercase();
        if self.enabled.get() {
            if let Some(&p) = self.colors.borrow().get(&key) {
                self.class("color").hit();
                return Ok(p);
            }
        }
        self.class("color").miss();
        let (pixel, _) = retry_once(|| {
            self.colors.borrow_mut().remove(&key);
            conn.alloc_named_color(name)
        })
        .map_err(xerr)?
        .ok_or_else(|| Exception::error(format!("unknown color name \"{name}\"")))?;
        if self.enabled.get() {
            self.colors.borrow_mut().insert(key, pixel);
            self.color_names
                .borrow_mut()
                .entry(pixel)
                .or_insert_with(|| name.to_string());
        }
        Ok(pixel)
    }

    /// The textual name a pixel was allocated under (reverse lookup).
    pub fn name_of_color(&self, pixel: Pixel) -> Option<String> {
        self.color_names.borrow().get(&pixel).cloned()
    }

    /// Resolves a font name to `(id, metrics)`, cached. Caching the
    /// metrics is what lets widgets measure text without server traffic.
    pub fn font(&self, conn: &Connection, name: &str) -> Result<(FontId, FontMetrics), Exception> {
        if self.enabled.get() {
            if let Some(&f) = self.fonts.borrow().get(name) {
                self.class("font").hit();
                return Ok(f);
            }
        }
        self.class("font").miss();
        let id = retry_once(|| {
            self.fonts.borrow_mut().remove(name);
            conn.open_font(name)
        })
        .map_err(xerr)?
        .ok_or_else(|| Exception::error(format!("font \"{name}\" doesn't exist")))?;
        let metrics = retry_once(|| conn.font_metrics(id))
            .map_err(xerr)?
            .ok_or_else(|| Exception::error(format!("font \"{name}\" doesn't exist")))?;
        if self.enabled.get() {
            self.fonts
                .borrow_mut()
                .insert(name.to_string(), (id, metrics));
            self.font_names
                .borrow_mut()
                .entry(id)
                .or_insert_with(|| name.to_string());
        }
        Ok((id, metrics))
    }

    /// The name a font was opened under.
    pub fn name_of_font(&self, id: FontId) -> Option<String> {
        self.font_names.borrow().get(&id).cloned()
    }

    /// Resolves a cursor name, cached.
    pub fn cursor(&self, conn: &Connection, name: &str) -> Result<CursorId, Exception> {
        if self.enabled.get() {
            if let Some(&c) = self.cursors.borrow().get(name) {
                self.class("cursor").hit();
                return Ok(c);
            }
        }
        self.class("cursor").miss();
        let id = retry_once(|| {
            self.cursors.borrow_mut().remove(name);
            conn.create_cursor(name)
        })
        .map_err(xerr)?
        .ok_or_else(|| Exception::error(format!("bad cursor spec \"{name}\"")))?;
        if self.enabled.get() {
            self.cursors.borrow_mut().insert(name.to_string(), id);
        }
        Ok(id)
    }

    /// Builds (and caches) the three-shade border for a background color.
    pub fn border(&self, conn: &Connection, bg_name: &str) -> Result<Border, Exception> {
        let key = bg_name.to_ascii_lowercase();
        if self.enabled.get() {
            if let Some(&b) = self.borders.borrow().get(&key) {
                self.class("border").hit();
                return Ok(b);
            }
        }
        self.class("border").miss();
        let rgb = xsim::lookup_color(bg_name)
            .ok_or_else(|| Exception::error(format!("unknown color name \"{bg_name}\"")))?;
        let scale = |v: u8, num: u32, den: u32| -> u8 { ((v as u32 * num / den).min(255)) as u8 };
        let light = xsim::Rgb {
            r: scale(rgb.r, 14, 10).max(60),
            g: scale(rgb.g, 14, 10).max(60),
            b: scale(rgb.b, 14, 10).max(60),
        };
        let dark = xsim::Rgb {
            r: scale(rgb.r, 6, 10),
            g: scale(rgb.g, 6, 10),
            b: scale(rgb.b, 6, 10),
        };
        // Pipeline the two shade allocations: they travel to the server in
        // the same flush as the (possible) background-color miss, so the
        // whole border costs one blocking wait instead of three.
        let light_cookie = conn.send_alloc_color(light);
        let dark_cookie = conn.send_alloc_color(dark);
        // A retryable error on a pipelined shade falls back to one fresh
        // synchronous allocation; the border cache entry for this key has
        // not been written yet, so nothing stale survives.
        let redeem = |cookie, rgb| match conn.wait(cookie) {
            Err(e) if e.retryable() => conn.alloc_color(rgb),
            r => r,
        };
        let border = Border {
            bg: self.color(conn, bg_name)?,
            light: redeem(light_cookie, light).map_err(xerr)?,
            dark: redeem(dark_cookie, dark).map_err(xerr)?,
        };
        if self.enabled.get() {
            self.borders.borrow_mut().insert(key, border);
        }
        Ok(border)
    }

    /// Resolves a bitmap name, cached: `@file` loads an XBM file (the
    /// Section 3.3 `@star` form), other names are Tk's built-ins
    /// (`gray25`, `gray50`, `black`, `white`). Returns `(id, w, h)`.
    pub fn bitmap(
        &self,
        conn: &Connection,
        name: &str,
    ) -> Result<(xsim::BitmapId, u32, u32), Exception> {
        if self.enabled.get() {
            if let Some(&b) = self.bitmaps.borrow().get(name) {
                self.class("bitmap").hit();
                return Ok(b);
            }
        }
        self.class("bitmap").miss();
        let bitmap = if let Some(path) = name.strip_prefix('@') {
            let text = std::fs::read_to_string(path).map_err(|e| {
                Exception::error(format!("error reading bitmap file \"{path}\": {e}"))
            })?;
            xsim::Bitmap::parse_xbm(&text).ok_or_else(|| {
                Exception::error(format!("file \"{path}\" isn't in bitmap format"))
            })?
        } else {
            xsim::bitmap::builtin(name)
                .ok_or_else(|| Exception::error(format!("bitmap \"{name}\" not defined")))?
        };
        let (w, h) = (bitmap.width, bitmap.height);
        let id = conn.create_bitmap(bitmap);
        if self.enabled.get() {
            self.bitmaps
                .borrow_mut()
                .insert(name.to_string(), (id, w, h));
        }
        Ok((id, w, h))
    }

    /// Returns a GC with the given values, shared among all requesters.
    pub fn gc(&self, conn: &Connection, values: GcValues) -> GcId {
        let key = (
            values.foreground,
            values.background,
            values.line_width,
            values.font,
        );
        if self.enabled.get() {
            if let Some(&gc) = self.gcs.borrow().get(&key) {
                self.class("gc").hit();
                return gc;
            }
        }
        self.class("gc").miss();
        let gc = conn.create_gc(values);
        if self.enabled.get() {
            self.gcs.borrow_mut().insert(key, gc);
        }
        gc
    }

    /// Cache sizes `(colors, fonts, cursors, borders, gcs)`, for tests.
    pub fn sizes(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.colors.borrow().len(),
            self.fonts.borrow().len(),
            self.cursors.borrow().len(),
            self.borders.borrow().len(),
            self.gcs.borrow().len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsim::Display;

    #[test]
    fn color_cache_avoids_round_trips() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let before = conn.stats().round_trips;
        let p1 = cache.color(&conn, "red").unwrap();
        let after_first = conn.stats().round_trips;
        let p2 = cache.color(&conn, "Red").unwrap();
        let p3 = cache.color(&conn, "RED").unwrap();
        let after_all = conn.stats().round_trips;
        assert_eq!(p1, p2);
        assert_eq!(p2, p3);
        assert_eq!(after_first - before, 1);
        assert_eq!(
            after_all, after_first,
            "cached hits must not touch the server"
        );
    }

    #[test]
    fn disabled_cache_goes_to_server_every_time() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        cache.set_enabled(false);
        let before = conn.stats().round_trips;
        cache.color(&conn, "red").unwrap();
        cache.color(&conn, "red").unwrap();
        cache.color(&conn, "red").unwrap();
        assert_eq!(conn.stats().round_trips - before, 3);
    }

    #[test]
    fn reverse_color_lookup_returns_text() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let p = cache.color(&conn, "MediumSeaGreen").unwrap();
        assert_eq!(cache.name_of_color(p), Some("MediumSeaGreen".into()));
    }

    #[test]
    fn unknown_color_reports_error() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let e = cache.color(&conn, "NotAColor").unwrap_err();
        assert!(e.msg.contains("unknown color name"));
    }

    #[test]
    fn font_cache_includes_metrics() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let (id, m) = cache.font(&conn, "fixed").unwrap();
        let before = conn.stats().round_trips;
        let (id2, m2) = cache.font(&conn, "fixed").unwrap();
        assert_eq!(conn.stats().round_trips, before);
        assert_eq!(id, id2);
        assert_eq!(m, m2);
        assert_eq!(cache.name_of_font(id), Some("fixed".into()));
    }

    #[test]
    fn cursor_cache() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let c = cache.cursor(&conn, "coffee_mug").unwrap();
        assert_eq!(cache.cursor(&conn, "coffee_mug").unwrap(), c);
        assert!(cache.cursor(&conn, "bogus_cursor").is_err());
    }

    #[test]
    fn border_shades_differ() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let b = cache.border(&conn, "gray").unwrap();
        assert_ne!(b.light, b.dark);
        let b2 = cache.border(&conn, "gray").unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn retryable_error_is_retried_once_and_succeeds() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let seq = conn.sequence();
        d.with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadAlloc,
            ))
        });
        let p = cache.color(&conn, "red").unwrap();
        assert_eq!(cache.color(&conn, "red").unwrap(), p, "entry was cached");
        assert_eq!(conn.with_obs(|o| o.faults_injected).unwrap(), 1);
    }

    #[test]
    fn non_retryable_error_propagates_as_exception() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let seq = conn.sequence();
        d.with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadAtom,
            ))
        });
        let e = cache.color(&conn, "red").unwrap_err();
        assert!(e.msg.contains("X protocol error"), "{}", e.msg);
        assert!(e.msg.contains("BadAtom"), "{}", e.msg);
        // Nothing stale was cached; the next lookup succeeds.
        cache.color(&conn, "red").unwrap();
    }

    #[test]
    fn border_shade_survives_a_retryable_fault() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let seq = conn.sequence();
        // Fault the first pipelined shade allocation; the border code
        // falls back to a synchronous retry.
        d.with_server(|s| {
            s.install_fault_plan(xsim::FaultPlan::default().error_at(
                0,
                seq + 1,
                xsim::XErrorCode::BadAlloc,
            ))
        });
        let b = cache.border(&conn, "gray").unwrap();
        assert_ne!(b.light, b.dark);
    }

    #[test]
    fn gc_cache_shares_by_values() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let v = GcValues::default();
        let g1 = cache.gc(&conn, v);
        let g2 = cache.gc(&conn, v);
        assert_eq!(g1, g2);
        let mut v2 = v;
        v2.line_width = 3;
        assert_ne!(cache.gc(&conn, v2), g1);
    }
}

#[cfg(test)]
mod bitmap_tests {
    use super::*;
    use xsim::Display;

    #[test]
    fn builtin_bitmaps_resolve_and_cache() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let (id, w, h) = cache.bitmap(&conn, "gray50").unwrap();
        assert_eq!((w, h), (16, 16));
        let before = conn.stats().requests;
        let (id2, _, _) = cache.bitmap(&conn, "gray50").unwrap();
        assert_eq!(id, id2);
        assert_eq!(conn.stats().requests, before, "cached hit is free");
    }

    #[test]
    fn at_file_form_loads_xbm() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        let path = std::env::temp_dir().join("rtk_star.xbm");
        std::fs::write(
            &path,
            "#define star_width 8\n#define star_height 2\nstatic char star_bits[] = {0xff, 0x81};\n",
        )
        .unwrap();
        let (_, w, h) = cache
            .bitmap(&conn, &format!("@{}", path.display()))
            .unwrap();
        assert_eq!((w, h), (8, 2));
    }

    #[test]
    fn bad_bitmaps_error() {
        let d = Display::new();
        let conn = d.connect();
        let cache = ResourceCache::new();
        assert!(cache.bitmap(&conn, "nosuchbitmap").is_err());
        assert!(cache.bitmap(&conn, "@/no/such/file").is_err());
    }
}
