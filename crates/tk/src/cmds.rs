//! The Tk intrinsics commands: `bind`, `destroy`, `winfo`, `focus`,
//! `option`, `after`, `update`, `wm`, and `tkwait`-style helpers.

use tcl::{wrong_args, Exception, TclResult};

use crate::app::TkApp;
use crate::optiondb::priority;

/// Registers all intrinsics commands on an application.
pub fn register_all(app: &TkApp) {
    app.register_command("bind", cmd_bind);
    app.register_command("destroy", cmd_destroy);
    app.register_command("winfo", cmd_winfo);
    app.register_command("focus", cmd_focus);
    app.register_command("option", cmd_option);
    app.register_command("after", cmd_after);
    app.register_command("update", cmd_update);
    app.register_command("wm", cmd_wm);
    crate::obs_cmd::register(app);
}

/// `bind window ?sequence? ?command?` (Figure 7). `window` may also be a
/// widget class name.
fn cmd_bind(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    match argv.len() {
        2 => Ok(tcl::format_list(
            &app.inner.bindings.borrow().sequences(&argv[1]),
        )),
        3 => Ok(app
            .inner
            .bindings
            .borrow()
            .get(&argv[1], &argv[2])
            .unwrap_or("")
            .to_string()),
        4 => {
            let owner = &argv[1];
            // Window owners must exist; class owners start upper-case.
            if owner.starts_with('.') {
                app.require_window(owner)?;
            }
            if argv[3].is_empty() {
                app.inner.bindings.borrow_mut().remove(owner, &argv[2]);
            } else {
                app.inner
                    .bindings
                    .borrow_mut()
                    .add(owner, &argv[2], &argv[3])?;
            }
            Ok(String::new())
        }
        _ => Err(wrong_args("bind window ?sequence? ?command?")),
    }
}

/// `destroy window ?window ...?`.
fn cmd_destroy(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    for path in &argv[1..] {
        if app.window(path).is_some() {
            app.destroy_window(path)?;
        }
    }
    Ok(String::new())
}

/// `winfo option window` — window information, answered from the
/// structure cache without server round trips (Section 3.3).
fn cmd_winfo(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("winfo option ?window?"));
    }
    match argv[1].as_str() {
        "interps" => return Ok(tcl::format_list(&crate::send::interps(app))),
        "screenwidth" => return Ok(xsim::SCREEN_WIDTH.to_string()),
        "screenheight" => return Ok(xsim::SCREEN_HEIGHT.to_string()),
        "exists" => {
            let path = argv
                .get(2)
                .ok_or_else(|| wrong_args("winfo exists window"))?;
            return Ok(if app.window(path).is_some() { "1" } else { "0" }.into());
        }
        _ => {}
    }
    let path = argv
        .get(2)
        .ok_or_else(|| wrong_args("winfo option window"))?;
    let rec = app.require_window(path)?;
    match argv[1].as_str() {
        "class" => Ok(rec.class.clone()),
        "name" => Ok(if path == "." {
            app.name()
        } else {
            rec.name().to_string()
        }),
        "parent" => Ok(crate::window::parent_path(path).unwrap_or("").to_string()),
        "children" => {
            let prefix = if path == "." {
                ".".to_string()
            } else {
                format!("{path}.")
            };
            let mut kids: Vec<String> = app
                .window_paths()
                .into_iter()
                .filter(|p| {
                    p.starts_with(&prefix)
                        && p.len() > prefix.len()
                        && !p[prefix.len()..].contains('.')
                })
                .collect();
            kids.sort();
            Ok(tcl::format_list(&kids))
        }
        "x" => Ok(rec.x.get().to_string()),
        "y" => Ok(rec.y.get().to_string()),
        "width" => Ok(rec.width.get().to_string()),
        "height" => Ok(rec.height.get().to_string()),
        "reqwidth" => Ok(rec.req_width.get().to_string()),
        "reqheight" => Ok(rec.req_height.get().to_string()),
        "ismapped" => Ok(if rec.mapped.get() { "1" } else { "0" }.into()),
        "id" => Ok(rec.xid.0.to_string()),
        "geometry" => Ok(format!(
            "{}x{}+{}+{}",
            rec.width.get(),
            rec.height.get(),
            rec.x.get(),
            rec.y.get()
        )),
        "rootx" | "rooty" => {
            // Walk the cached structure up to the root.
            let mut v = 0i64;
            let mut cur = path.clone();
            loop {
                let r = app.require_window(&cur)?;
                v += if argv[1] == "rootx" {
                    r.x.get() as i64
                } else {
                    r.y.get() as i64
                };
                match crate::window::parent_path(&cur) {
                    Some(p) => cur = p.to_string(),
                    None => break,
                }
            }
            Ok(v.to_string())
        }
        "toplevel" => {
            let mut cur = path.clone();
            while !app.is_toplevel(&cur) {
                match crate::window::parent_path(&cur) {
                    Some(p) => cur = p.to_string(),
                    None => break,
                }
            }
            Ok(cur)
        }
        "manager" => Ok(rec.manager.borrow().clone()),
        other => Err(Exception::error(format!(
            "bad option \"{other}\": must be children, class, exists, geometry, \
             height, id, interps, ismapped, manager, name, parent, reqheight, \
             reqwidth, rootx, rooty, screenheight, screenwidth, toplevel, \
             width, x, or y"
        ))),
    }
}

/// `focus ?window?` (Section 3.7).
fn cmd_focus(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    match argv.len() {
        1 => {
            let xid = app.conn().get_input_focus().map_err(crate::cache::xerr)?;
            Ok(app.path_of(xid).unwrap_or_default())
        }
        2 => {
            if argv[1] == "none" {
                app.conn().set_input_focus(xsim::Xid::NONE);
                return Ok(String::new());
            }
            let rec = app.require_window(&argv[1])?;
            app.conn().set_input_focus(rec.xid);
            Ok(String::new())
        }
        _ => Err(wrong_args("focus ?window?")),
    }
}

/// `option add pattern value ?priority?`, `option get window name class`,
/// `option clear`, `option readfile fileName ?priority?` (Section 3.5).
fn cmd_option(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("option cmd arg ?arg ...?"));
    }
    let parse_priority = |s: Option<&String>| -> Result<u32, Exception> {
        match s.map(String::as_str) {
            None => Ok(priority::INTERACTIVE),
            Some("widgetDefault") => Ok(priority::WIDGET_DEFAULT),
            Some("startupFile") => Ok(priority::STARTUP_FILE),
            Some("userDefault") => Ok(priority::USER_DEFAULT),
            Some("interactive") => Ok(priority::INTERACTIVE),
            Some(n) => n
                .parse()
                .map_err(|_| Exception::error(format!("bad priority level \"{n}\""))),
        }
    };
    match argv[1].as_str() {
        "add" => {
            if argv.len() != 4 && argv.len() != 5 {
                return Err(wrong_args("option add pattern value ?priority?"));
            }
            let prio = parse_priority(argv.get(4))?;
            app.inner.options.borrow_mut().add(&argv[2], &argv[3], prio);
            Ok(String::new())
        }
        "get" => {
            if argv.len() != 5 {
                return Err(wrong_args("option get window name class"));
            }
            app.require_window(&argv[2])?;
            Ok(app
                .option_get(&argv[2], &argv[3], &argv[4])
                .unwrap_or_default())
        }
        "clear" => {
            app.inner.options.borrow_mut().clear();
            Ok(String::new())
        }
        "readfile" => {
            if argv.len() != 3 && argv.len() != 4 {
                return Err(wrong_args("option readfile fileName ?priority?"));
            }
            let prio = parse_priority(argv.get(3))?;
            let text = std::fs::read_to_string(&argv[2]).map_err(|e| {
                Exception::error(format!("couldn't read file \"{}\": {e}", argv[2]))
            })?;
            app.inner.options.borrow_mut().load_defaults(&text, prio);
            Ok(String::new())
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be add, clear, get, or readfile"
        ))),
    }
}

/// `after ms ?script?`: with a script, schedules it; without, advances the
/// virtual clock (the simulation's stand-in for blocking). `after idle
/// script` and `after cancel id` are also supported.
fn cmd_after(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(wrong_args("after ms ?script?"));
    }
    match argv[1].as_str() {
        "idle" => {
            if argv.len() < 3 {
                return Err(wrong_args("after idle script"));
            }
            app.schedule_idle_script(&argv[2..].join(" "));
            Ok(String::new())
        }
        "cancel" => {
            if argv.len() != 3 {
                return Err(wrong_args("after cancel id"));
            }
            if let Ok(id) = argv[2].trim_start_matches("after#").parse::<u64>() {
                app.cancel_after(id);
            }
            Ok(String::new())
        }
        ms => {
            let ms: u64 = ms.parse().map_err(|_| {
                Exception::error(format!("expected integer but got \"{}\"", argv[1]))
            })?;
            if argv.len() == 2 {
                app.env().advance(ms);
                Ok(String::new())
            } else {
                let id = app.schedule_after(ms, &argv[2..].join(" "));
                Ok(format!("after#{id}"))
            }
        }
    }
}

/// `update ?idletasks?`: processes pending events and idle callbacks.
fn cmd_update(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    match argv.get(1).map(String::as_str) {
        None => {
            app.update();
            Ok(String::new())
        }
        Some("idletasks") => {
            app.run_idle_tasks();
            Ok(String::new())
        }
        Some(other) => Err(Exception::error(format!(
            "bad argument \"{other}\": must be idletasks"
        ))),
    }
}

/// A minimal `wm`: title, geometry, withdraw, deiconify. There is no real
/// window manager in the simulation; requests are granted immediately.
fn cmd_wm(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args("wm option window ?arg ...?"));
    }
    let rec = app.require_window(&argv[2])?;
    if !app.is_toplevel(&argv[2]) {
        return Err(Exception::error(format!(
            "window \"{}\" isn't a top-level window",
            argv[2]
        )));
    }
    match argv[1].as_str() {
        "title" => {
            if let Some(title) = argv.get(3) {
                let atom = app
                    .conn()
                    .intern_atom("WM_NAME")
                    .map_err(crate::cache::xerr)?;
                app.conn().change_property(rec.xid, atom, title);
                Ok(String::new())
            } else {
                let atom = app
                    .conn()
                    .intern_atom("WM_NAME")
                    .map_err(crate::cache::xerr)?;
                Ok(app
                    .conn()
                    .get_property(rec.xid, atom)
                    .map_err(crate::cache::xerr)?
                    .unwrap_or_default())
            }
        }
        "geometry" => {
            if let Some(spec) = argv.get(3) {
                // WxH, WxH+X+Y, or +X+Y alone.
                let (size, pos) = match spec.find(['+', '-']) {
                    Some(i) => (&spec[..i], Some(&spec[i..])),
                    None => (spec.as_str(), None),
                };
                let (w, h) = if size.is_empty() {
                    (rec.width.get(), rec.height.get())
                } else {
                    crate::draw::parse_geometry(size)?
                };
                let (mut x, mut y) = (None, None);
                if let Some(pos) = pos {
                    // Simple +X+Y parser (the common form).
                    let parts: Vec<&str> = pos[1..].split('+').collect();
                    if parts.len() == 2 {
                        x = parts[0].parse().ok();
                        y = parts[1].parse().ok();
                    }
                }
                app.conn()
                    .configure_window(rec.xid, x, y, Some(w), Some(h), None);
                Ok(String::new())
            } else {
                Ok(format!(
                    "{}x{}+{}+{}",
                    rec.width.get(),
                    rec.height.get(),
                    rec.x.get(),
                    rec.y.get()
                ))
            }
        }
        "withdraw" => {
            app.conn().unmap_window(rec.xid);
            Ok(String::new())
        }
        "deiconify" => {
            app.conn().map_window(rec.xid);
            Ok(String::new())
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be deiconify, geometry, title, or withdraw"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn bind_set_get_list_remove() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .x").unwrap();
        app.eval("bind .x <Enter> {print hi}").unwrap();
        assert_eq!(app.eval("bind .x <Enter>").unwrap(), "print hi");
        assert_eq!(app.eval("bind .x").unwrap(), "<Enter>");
        app.eval("bind .x <Enter> {}").unwrap();
        assert_eq!(app.eval("bind .x <Enter>").unwrap(), "");
    }

    #[test]
    fn figure7_bindings_fire() {
        let env = TkEnv::new();
        let app = env.app("t");
        let buf = app.interp().capture_output();
        app.eval("frame .x -geometry 100x100").unwrap();
        app.eval("pack append . .x {top}").unwrap();
        app.update();
        app.eval(r#"bind .x <Enter> {print "hi\n"}"#).unwrap();
        app.eval(r#"bind .x a {print "you typed 'a'\n"}"#).unwrap();
        app.eval(r#"bind .x <Escape>q {print "you typed escape-q\n"}"#)
            .unwrap();
        app.eval(r#"bind .x <Double-Button-1> {print "mouse at %x %y\n"}"#)
            .unwrap();
        let d = env.display();
        // Start outside the window so moving in generates an Enter.
        d.move_pointer(500, 500);
        env.dispatch_all();
        d.move_pointer(50, 50);
        env.dispatch_all();
        d.type_char('a');
        env.dispatch_all();
        d.press_key("Escape");
        d.type_char('q');
        env.dispatch_all();
        d.click(1);
        d.click(1);
        env.dispatch_all();
        let out = buf.borrow().clone();
        assert!(out.contains("hi\n"), "{out}");
        assert!(out.contains("you typed 'a'"), "{out}");
        assert!(out.contains("you typed escape-q"), "{out}");
        assert!(out.contains("mouse at 50 50"), "{out}");
    }

    #[test]
    fn destroy_command_removes_widget_command() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text x").unwrap();
        app.eval(".b configure -text y").unwrap();
        app.eval("destroy .b").unwrap();
        assert!(app.eval(".b configure -text z").is_err());
        assert_eq!(app.eval("winfo exists .b").unwrap(), "0");
        // Destroying again is fine (already gone).
        app.eval("destroy .b").unwrap();
    }

    #[test]
    fn winfo_basics() {
        let env = TkEnv::new();
        let app = env.app("myapp");
        app.eval("frame .f -geometry 50x40").unwrap();
        app.eval("pack append . .f {top}").unwrap();
        app.update();
        assert_eq!(app.eval("winfo class .f").unwrap(), "Frame");
        assert_eq!(app.eval("winfo name .f").unwrap(), "f");
        assert_eq!(app.eval("winfo name .").unwrap(), "myapp");
        assert_eq!(app.eval("winfo parent .f").unwrap(), ".");
        assert_eq!(app.eval("winfo width .f").unwrap(), "50");
        assert_eq!(app.eval("winfo ismapped .f").unwrap(), "1");
        assert_eq!(app.eval("winfo exists .nope").unwrap(), "0");
        assert!(app.eval("winfo width .nope").is_err());
    }

    #[test]
    fn winfo_children() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .a; frame .b; frame .a.c").unwrap();
        assert_eq!(app.eval("winfo children .").unwrap(), ".a .b");
        assert_eq!(app.eval("winfo children .a").unwrap(), ".a.c");
    }

    #[test]
    fn winfo_reads_from_structure_cache() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f -geometry 30x30").unwrap();
        app.eval("pack append . .f {top}").unwrap();
        app.update();
        let before = app.conn().stats().round_trips;
        app.eval("winfo width .f").unwrap();
        app.eval("winfo x .f").unwrap();
        app.eval("winfo ismapped .f").unwrap();
        assert_eq!(
            app.conn().stats().round_trips,
            before,
            "winfo must not touch the server"
        );
    }

    #[test]
    fn focus_assignment() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f").unwrap();
        assert_eq!(app.eval("focus").unwrap(), "");
        app.eval("focus .f").unwrap();
        assert_eq!(app.eval("focus").unwrap(), ".f");
        app.eval("focus none").unwrap();
        assert_eq!(app.eval("focus").unwrap(), "");
    }

    #[test]
    fn option_command() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("option add *Button.background red").unwrap();
        app.eval("button .b").unwrap();
        assert_eq!(
            app.eval("option get .b background Background").unwrap(),
            "red"
        );
        // New widgets pick the option up as their default.
        let info = app.eval(".b configure -background").unwrap();
        assert!(info.ends_with("red"), "{info}");
        app.eval("option clear").unwrap();
        assert_eq!(app.eval("option get .b background Background").unwrap(), "");
    }

    #[test]
    fn after_schedules_and_cancels() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set n 0").unwrap();
        let id = app.eval("after 100 {incr n}").unwrap();
        assert!(id.starts_with("after#"));
        app.eval("after 50").unwrap(); // advances the virtual clock
        assert_eq!(app.eval("set n").unwrap(), "0");
        app.eval("after 60").unwrap();
        assert_eq!(app.eval("set n").unwrap(), "1");
        let id2 = app.eval("after 10 {incr n}").unwrap();
        app.eval(&format!("after cancel {id2}")).unwrap();
        app.eval("after 20").unwrap();
        assert_eq!(app.eval("set n").unwrap(), "1");
    }

    #[test]
    fn wm_title_and_geometry() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("wm title . {My App}").unwrap();
        assert_eq!(app.eval("wm title .").unwrap(), "My App");
        app.eval("wm geometry . 300x200+10+20").unwrap();
        app.update();
        assert_eq!(app.eval("winfo width .").unwrap(), "300");
        assert_eq!(app.eval("winfo x .").unwrap(), "10");
        app.eval("frame .f").unwrap();
        assert!(app.eval("wm title .f x").is_err());
    }

    #[test]
    fn winfo_interps_lists_applications() {
        let env = TkEnv::new();
        let a = env.app("one");
        let _b = env.app("two");
        let interps = a.eval("winfo interps").unwrap();
        assert!(interps.contains("one"));
        assert!(interps.contains("two"));
    }
}
