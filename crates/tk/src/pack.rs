//! The packer geometry manager (Section 3.4, Figure 8).
//!
//! `pack append .x .x.a {top} .x.b {top} ...` makes the packer claim the
//! named windows and arrange them inside `.x` by repeatedly carving a
//! *parcel* off one side of the remaining cavity, exactly as the paper's
//! Figure 8 shows for an all-in-a-column arrangement. The layout algorithm
//! (including `expand`'s look-ahead space distribution) follows the
//! original `tkPack.c`.

use std::collections::HashMap;

use tcl::{wrong_args, Exception, TclResult};

use crate::app::TkApp;
use crate::draw::Anchor;

/// Which side of the cavity a slave is packed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Side {
    #[default]
    Top,
    Bottom,
    Left,
    Right,
}

impl Side {
    fn is_vertical(self) -> bool {
        matches!(self, Side::Top | Side::Bottom)
    }
}

/// One packed window and its packing options.
#[derive(Debug, Clone)]
pub struct Slot {
    /// The slave window's path.
    pub path: String,
    pub side: Side,
    pub expand: bool,
    pub fill_x: bool,
    pub fill_y: bool,
    pub padx: u32,
    pub pady: u32,
    /// Where the slave sits inside its parcel when it does not fill it.
    pub anchor: Anchor,
}

impl Slot {
    fn new(path: &str) -> Slot {
        Slot {
            path: path.to_string(),
            side: Side::Top,
            expand: false,
            fill_x: false,
            fill_y: false,
            padx: 0,
            pady: 0,
            anchor: Anchor::Center,
        }
    }

    /// Renders the options back into the `pack append` word form.
    pub fn options_text(&self) -> String {
        let mut words: Vec<String> = Vec::new();
        words.push(
            match self.side {
                Side::Top => "top",
                Side::Bottom => "bottom",
                Side::Left => "left",
                Side::Right => "right",
            }
            .to_string(),
        );
        if self.expand {
            words.push("expand".into());
        }
        match (self.fill_x, self.fill_y) {
            (true, true) => words.push("fill".into()),
            (true, false) => words.push("fillx".into()),
            (false, true) => words.push("filly".into()),
            (false, false) => {}
        }
        if self.padx != 0 {
            words.push(format!("padx {}", self.padx));
        }
        if self.pady != 0 {
            words.push(format!("pady {}", self.pady));
        }
        if self.anchor != Anchor::Center {
            words.push(format!("frame {}", self.anchor.name()));
        }
        words.join(" ")
    }
}

/// Parses a packing option list like `{left expand fill padx 5}`.
pub fn parse_options(path: &str, spec: &str) -> Result<Slot, Exception> {
    let words = tcl::parse_list(spec)?;
    let mut slot = Slot::new(path);
    let mut i = 0usize;
    while i < words.len() {
        match words[i].as_str() {
            "top" => slot.side = Side::Top,
            "bottom" => slot.side = Side::Bottom,
            "left" => slot.side = Side::Left,
            "right" => slot.side = Side::Right,
            "expand" => slot.expand = true,
            "fill" => {
                slot.fill_x = true;
                slot.fill_y = true;
            }
            "fillx" => slot.fill_x = true,
            "filly" => slot.fill_y = true,
            "padx" | "pady" => {
                i += 1;
                let v: u32 = words.get(i).and_then(|w| w.parse().ok()).ok_or_else(|| {
                    Exception::error(format!("missing or bad pad value in \"{spec}\""))
                })?;
                if words[i - 1] == "padx" {
                    slot.padx = v;
                } else {
                    slot.pady = v;
                }
            }
            "frame" => {
                i += 1;
                let a = words
                    .get(i)
                    .ok_or_else(|| Exception::error(format!("missing anchor in \"{spec}\"")))?;
                slot.anchor = Anchor::parse(a)?;
            }
            other => {
                return Err(Exception::error(format!(
                    "bad option \"{other}\": should be top, bottom, left, right, \
                     expand, fill, fillx, filly, padx, pady, or frame"
                )))
            }
        }
        i += 1;
    }
    Ok(slot)
}

/// The packer's bookkeeping: which windows it manages in which masters.
#[derive(Debug, Default)]
pub struct Packer {
    masters: HashMap<String, Vec<Slot>>,
    master_of: HashMap<String, String>,
}

impl Packer {
    /// Creates an empty packer.
    pub fn new() -> Packer {
        Packer::default()
    }

    /// The master a slave is packed in, if any.
    pub fn master_of(&self, slave: &str) -> Option<String> {
        self.master_of.get(slave).cloned()
    }

    /// Does this master have packed slaves?
    pub fn has_slaves(&self, master: &str) -> bool {
        self.masters
            .get(master)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    /// The slots of a master, in packing order.
    pub fn slots(&self, master: &str) -> Vec<Slot> {
        self.masters.get(master).cloned().unwrap_or_default()
    }

    /// Adds a slot at `index` (or the end), reclaiming the slave from any
    /// previous master.
    pub fn insert(&mut self, master: &str, slot: Slot, index: Option<usize>) {
        self.unpack(&slot.path);
        self.master_of.insert(slot.path.clone(), master.to_string());
        let list = self.masters.entry(master.to_string()).or_default();
        match index {
            Some(i) if i <= list.len() => list.insert(i, slot),
            _ => list.push(slot),
        }
    }

    /// Position of a slave within its master's packing order.
    pub fn index_of(&self, master: &str, slave: &str) -> Option<usize> {
        self.masters
            .get(master)?
            .iter()
            .position(|s| s.path == slave)
    }

    /// Removes a slave from the packing order; returns its old master.
    pub fn unpack(&mut self, slave: &str) -> Option<String> {
        let master = self.master_of.remove(slave)?;
        if let Some(list) = self.masters.get_mut(&master) {
            list.retain(|s| s.path != slave);
        }
        Some(master)
    }

    /// Drops every record touching `path` (window destroyed).
    pub fn forget(&mut self, path: &str) {
        self.unpack(path);
        self.masters.remove(path);
    }
}

/// `YExpansion` from tkPack.c: how much extra vertical space an expanding
/// top/bottom slave may claim, looking ahead at the remaining slaves.
fn y_expansion(slots: &[Slot], req: &[(u32, u32)], mut cavity_height: i64) -> i64 {
    let mut min_expand = cavity_height;
    let mut num_expand: i64 = 0;
    for (slot, &(_, h)) in slots.iter().zip(req) {
        let child_height = h as i64 + 2 * slot.pady as i64;
        if !slot.side.is_vertical() {
            if num_expand > 0 {
                let cur = (cavity_height - child_height) / num_expand;
                min_expand = min_expand.min(cur);
            }
        } else {
            cavity_height -= child_height;
            if slot.expand {
                num_expand += 1;
            }
        }
    }
    if num_expand > 0 {
        min_expand = min_expand.min(cavity_height / num_expand);
    }
    min_expand.max(0)
}

/// `XExpansion`: the horizontal counterpart.
fn x_expansion(slots: &[Slot], req: &[(u32, u32)], mut cavity_width: i64) -> i64 {
    let mut min_expand = cavity_width;
    let mut num_expand: i64 = 0;
    for (slot, &(w, _)) in slots.iter().zip(req) {
        let child_width = w as i64 + 2 * slot.padx as i64;
        if slot.side.is_vertical() {
            if num_expand > 0 {
                let cur = (cavity_width - child_width) / num_expand;
                min_expand = min_expand.min(cur);
            }
        } else {
            cavity_width -= child_width;
            if slot.expand {
                num_expand += 1;
            }
        }
    }
    if num_expand > 0 {
        min_expand = min_expand.min(cavity_width / num_expand);
    }
    min_expand.max(0)
}

/// Recomputes the layout of `master`'s slaves and re-places their windows.
/// Also performs geometry propagation: the master's own requested size is
/// set to what its slaves need.
pub fn relayout(app: &TkApp, master: &str) {
    let slots = app.inner.packer.borrow().slots(master);
    let Some(master_rec) = app.window(master) else {
        return;
    };
    if slots.is_empty() {
        return;
    }
    app.inner.obs.incr("pack.relayouts");
    let _span = app.inner.obs.span("pack.relayout_ns");
    let _tspan = app.inner.tracer.begin("relayout", master, 0);
    // Requested sizes of every slave (the structure cache; no server trip).
    let req: Vec<(u32, u32)> = slots
        .iter()
        .map(|s| {
            app.window(&s.path)
                .map(|w| (w.req_width.get(), w.req_height.get()))
                .unwrap_or((1, 1))
        })
        .collect();

    // Geometry propagation: tell the master what the slaves need. The
    // requirement accumulates in reverse packing order.
    let ib = master_rec.internal_border.get() as i64;
    let (mut need_w, mut need_h) = (0i64, 0i64);
    for (slot, &(w, h)) in slots.iter().zip(&req).rev() {
        let cw = w as i64 + 2 * slot.padx as i64;
        let ch = h as i64 + 2 * slot.pady as i64;
        if slot.side.is_vertical() {
            need_w = need_w.max(cw);
            need_h += ch;
        } else {
            need_w += cw;
            need_h = need_h.max(ch);
        }
    }
    need_w += 2 * ib;
    need_h += 2 * ib;
    if need_w != master_rec.req_width.get() as i64 || need_h != master_rec.req_height.get() as i64 {
        app.geometry_request(master, need_w.max(1) as u32, need_h.max(1) as u32);
    }

    // Carve parcels out of the cavity.
    let mut cx = ib;
    let mut cy = ib;
    let mut cw = master_rec.width.get() as i64 - 2 * ib;
    let mut ch = master_rec.height.get() as i64 - 2 * ib;
    for (i, slot) in slots.iter().enumerate() {
        let (rw, rh) = req[i];
        let (frame_x, frame_y, frame_w, frame_h);
        if slot.side.is_vertical() {
            frame_w = cw;
            let mut fh = rh as i64 + 2 * slot.pady as i64;
            if slot.expand {
                fh += y_expansion(&slots[i..], &req[i..], ch);
            }
            let fh = fh.min(ch).max(0);
            frame_h = fh;
            frame_x = cx;
            if slot.side == Side::Top {
                frame_y = cy;
                cy += fh;
            } else {
                frame_y = cy + ch - fh;
            }
            ch -= fh;
        } else {
            frame_h = ch;
            let mut fw = rw as i64 + 2 * slot.padx as i64;
            if slot.expand {
                fw += x_expansion(&slots[i..], &req[i..], cw);
            }
            let fw = fw.min(cw).max(0);
            frame_w = fw;
            frame_y = cy;
            if slot.side == Side::Left {
                frame_x = cx;
                cx += fw;
            } else {
                frame_x = cx + cw - fw;
            }
            cw -= fw;
        }
        // Size the slave within its parcel.
        let avail_w = (frame_w - 2 * slot.padx as i64).max(1);
        let avail_h = (frame_h - 2 * slot.pady as i64).max(1);
        let w = if slot.fill_x {
            avail_w
        } else {
            (rw as i64).min(avail_w)
        };
        let h = if slot.fill_y {
            avail_h
        } else {
            (rh as i64).min(avail_h)
        };
        let (ox, oy) = slot.anchor.place(
            (frame_w - 2 * slot.padx as i64) as i32,
            (frame_h - 2 * slot.pady as i64) as i32,
            w as i32,
            h as i32,
            0,
        );
        app.place_window(
            &slot.path,
            (frame_x + slot.padx as i64) as i32 + ox,
            (frame_y + slot.pady as i64) as i32 + oy,
            w as u32,
            h as u32,
        );
    }
}

/// Registers the `pack` command on an application.
pub fn register(app: &TkApp) {
    app.register_command("pack", cmd_pack);
}

fn cmd_pack(app: &TkApp, _interp: &tcl::Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(wrong_args(
            "pack append|before|after|unpack|info arg ?arg ...?",
        ));
    }
    match argv[1].as_str() {
        "append" => {
            let master = &argv[2];
            app.require_window(master)?;
            let rest = &argv[3..];
            if rest.is_empty() || rest.len() % 2 != 0 {
                return Err(wrong_args(
                    "pack append master window options ?window options ...?",
                ));
            }
            for pair in rest.chunks(2) {
                let (path, options) = (&pair[0], &pair[1]);
                let rec = app.require_window(path)?;
                check_master(master, path)?;
                let slot = parse_options(path, options)?;
                *rec.manager.borrow_mut() = "pack".into();
                app.inner.packer.borrow_mut().insert(master, slot, None);
            }
            app.schedule_relayout(master);
            crate::pack::relayout(app, master);
            Ok(String::new())
        }
        "before" | "after" => {
            // pack before|after sibling window options ?window options ...?
            let sibling = &argv[2];
            let packer_master = app
                .inner
                .packer
                .borrow()
                .master_of(sibling)
                .ok_or_else(|| Exception::error(format!("window \"{sibling}\" isn't packed")))?;
            let rest = &argv[3..];
            if rest.is_empty() || rest.len() % 2 != 0 {
                return Err(wrong_args(
                    "pack before|after sibling window options ?window options ...?",
                ));
            }
            let insert_at = {
                let p = app.inner.packer.borrow();
                let base = p.index_of(&packer_master, sibling).unwrap_or(0);
                if argv[1] == "before" {
                    base
                } else {
                    base + 1
                }
            };
            for (offset, pair) in rest.chunks(2).enumerate() {
                let (path, options) = (&pair[0], &pair[1]);
                let rec = app.require_window(path)?;
                check_master(&packer_master, path)?;
                let slot = parse_options(path, options)?;
                *rec.manager.borrow_mut() = "pack".into();
                app.inner.packer.borrow_mut().insert(
                    &packer_master,
                    slot,
                    Some(insert_at + offset),
                );
            }
            app.schedule_relayout(&packer_master);
            relayout(app, &packer_master);
            Ok(String::new())
        }
        "unpack" => {
            let path = &argv[2];
            let master = app.inner.packer.borrow_mut().unpack(path);
            if let Some(rec) = app.window(path) {
                *rec.manager.borrow_mut() = String::new();
                app.conn().unmap_window(rec.xid);
            }
            if let Some(master) = master {
                app.schedule_relayout(&master);
                relayout(app, &master);
            }
            Ok(String::new())
        }
        "info" => {
            let master = &argv[2];
            let slots = app.inner.packer.borrow().slots(master);
            let mut words: Vec<String> = Vec::new();
            for s in slots {
                words.push(s.path.clone());
                words.push(s.options_text());
            }
            Ok(tcl::format_list(&words))
        }
        other => Err(Exception::error(format!(
            "bad option \"{other}\": should be append, before, after, unpack, or info"
        ))),
    }
}

/// The packer only manages children (or descendants) of the master.
fn check_master(master: &str, slave: &str) -> Result<(), Exception> {
    let ok = crate::window::parent_path(slave)
        .map(|p| p == master)
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err(Exception::error(format!(
            "can't pack \"{slave}\" inside \"{master}\": not its parent"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TkEnv;

    fn setup() -> (TkEnv, TkApp) {
        let env = TkEnv::new();
        let app = env.app("t");
        (env, app)
    }

    /// Creates a plain window with a fixed requested size.
    fn child(app: &TkApp, path: &str, w: u32, h: u32) {
        let rec = app.make_window(path, "Frame", w, h, 0).unwrap();
        rec.req_width.set(w);
        rec.req_height.set(h);
    }

    #[test]
    fn column_layout_in_order() {
        let (_env, app) = setup();
        child(&app, ".a", 50, 20);
        child(&app, ".b", 60, 30);
        app.eval("pack append . .a {top} .b {top}").unwrap();
        app.update();
        let a = app.window(".a").unwrap();
        let b = app.window(".b").unwrap();
        // Non-fill slaves center horizontally in their parcel: the master
        // is 60 wide (widest slave), so .a (50 wide) sits at x=5.
        assert_eq!((a.x.get(), a.y.get()), (5, 0));
        assert_eq!((b.x.get(), b.y.get()), (0, 20));
        assert_eq!(a.height.get(), 20);
        assert_eq!(b.height.get(), 30);
        // Geometry propagation: the master asked for max width, sum height.
        let main = app.window(".").unwrap();
        assert_eq!(main.req_width.get(), 60);
        assert_eq!(main.req_height.get(), 50);
    }

    #[test]
    fn figure8_insufficient_space_clips() {
        // Figure 8: four windows packed in a column into a parent that is
        // too small; C gets less width, D gets less height.
        let (_env, app) = setup();
        // Parent .p is fixed at 100x90 (not a toplevel: its size is ours).
        child(&app, ".p", 100, 90);
        child(&app, ".p.a", 60, 30);
        child(&app, ".p.b", 80, 30);
        child(&app, ".p.c", 120, 20); // wider than the parent
        child(&app, ".p.d", 50, 40); // does not fit vertically
        app.eval("pack append .p .p.a {top} .p.b {top} .p.c {top} .p.d {top}")
            .unwrap();
        app.conn().configure_window(
            app.window(".p").unwrap().xid,
            None,
            None,
            Some(100),
            Some(90),
            None,
        );
        app.update();
        relayout(&app, ".p");
        let c = app.window(".p.c").unwrap();
        let d = app.window(".p.d").unwrap();
        // C wanted 120 wide but the parent is only 100.
        assert_eq!(c.width.get(), 100);
        // D wanted 40 high but only 90-30-30-20 = 10 remain.
        assert_eq!(d.height.get(), 10);
    }

    #[test]
    fn side_by_side_with_filly_and_expand() {
        // The Figure 9 arrangement:
        //   pack append . .scroll {right filly} .list {left expand fill}
        let (_env, app) = setup();
        child(&app, ".scroll", 16, 100);
        child(&app, ".list", 120, 200);
        app.eval("pack append . .scroll {right filly} .list {left expand fill}")
            .unwrap();
        app.update();
        let main = app.window(".").unwrap();
        assert_eq!(main.req_width.get(), 136);
        assert_eq!(main.req_height.get(), 200);
        let scroll = app.window(".scroll").unwrap();
        let list = app.window(".list").unwrap();
        // The scrollbar hugs the right edge at full height.
        assert_eq!(scroll.height.get(), main.height.get());
        assert_eq!(
            scroll.x.get() + scroll.width.get() as i32,
            main.width.get() as i32
        );
        // The listbox fills the rest.
        assert_eq!(list.x.get(), 0);
        assert_eq!(list.width.get(), main.width.get() - scroll.width.get());
        assert_eq!(list.height.get(), main.height.get());
    }

    #[test]
    fn expand_distributes_extra_space() {
        let (_env, app) = setup();
        child(&app, ".p", 100, 100);
        child(&app, ".p.a", 10, 10);
        child(&app, ".p.b", 10, 10);
        app.eval("pack append .p .p.a {top expand fill} .p.b {top expand fill}")
            .unwrap();
        // Pin the master at 100x100.
        app.conn().configure_window(
            app.window(".p").unwrap().xid,
            None,
            None,
            Some(100),
            Some(100),
            None,
        );
        app.update();
        relayout(&app, ".p");
        let a = app.window(".p.a").unwrap();
        let b = app.window(".p.b").unwrap();
        assert_eq!(a.height.get(), 50);
        assert_eq!(b.height.get(), 50);
        assert_eq!(a.width.get(), 100);
    }

    #[test]
    fn unpack_removes_and_unmaps() {
        let (_env, app) = setup();
        child(&app, ".a", 50, 20);
        app.eval("pack append . .a {top}").unwrap();
        app.update();
        assert!(app.window(".a").unwrap().mapped.get());
        app.eval("pack unpack .a").unwrap();
        app.update();
        assert!(!app.window(".a").unwrap().mapped.get());
        assert!(app.inner.packer.borrow().master_of(".a").is_none());
    }

    #[test]
    fn pack_before_and_after_order() {
        let (_env, app) = setup();
        child(&app, ".a", 10, 10);
        child(&app, ".b", 10, 10);
        child(&app, ".c", 10, 10);
        app.eval("pack append . .a {top} .c {top}").unwrap();
        app.eval("pack before .c .b {top}").unwrap();
        let order: Vec<String> = app
            .inner
            .packer
            .borrow()
            .slots(".")
            .iter()
            .map(|s| s.path.clone())
            .collect();
        assert_eq!(order, vec![".a", ".b", ".c"]);
    }

    #[test]
    fn pack_info_round_trips_options() {
        let (_env, app) = setup();
        child(&app, ".a", 10, 10);
        app.eval("pack append . .a {right filly padx 3}").unwrap();
        let info = app.eval("pack info .").unwrap();
        assert!(info.contains(".a"), "{info}");
        assert!(info.contains("right"), "{info}");
        assert!(info.contains("filly"), "{info}");
        assert!(info.contains("padx 3"), "{info}");
    }

    #[test]
    fn pack_rejects_non_children() {
        let (_env, app) = setup();
        child(&app, ".a", 10, 10);
        child(&app, ".b", 10, 10);
        child(&app, ".b.c", 10, 10);
        assert!(app.eval("pack append .a .b.c {top}").is_err());
    }

    #[test]
    fn repacking_moves_between_masters() {
        let (_env, app) = setup();
        child(&app, ".m1", 100, 100);
        child(&app, ".m2", 100, 100);
        child(&app, ".m1.w", 10, 10);
        app.eval("pack append .m1 .m1.w {top}").unwrap();
        assert_eq!(
            app.inner.packer.borrow().master_of(".m1.w"),
            Some(".m1".into())
        );
        // Repacking into the same master twice must not duplicate.
        app.eval("pack append .m1 .m1.w {bottom}").unwrap();
        assert_eq!(app.inner.packer.borrow().slots(".m1").len(), 1);
    }

    #[test]
    fn padding_offsets_slave() {
        let (_env, app) = setup();
        child(&app, ".a", 20, 20);
        app.eval("pack append . .a {top padx 5 pady 7}").unwrap();
        app.update();
        let a = app.window(".a").unwrap();
        assert_eq!(a.y.get(), 7);
        // Horizontally centered in the parcel (parcel is master width).
        assert!(a.x.get() >= 5);
    }
}
