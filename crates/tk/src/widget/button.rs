//! Labels, buttons, check buttons, and radio buttons.
//!
//! As the paper's Table I notes, "in Tk a single file implements labels,
//! buttons, check buttons, and radio buttons" — they share their options,
//! drawing, and mouse behavior, differing only in the indicator and in
//! what `invoke` does.

use std::cell::Cell;
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues, Rect};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::{draw_3d_rect, Relief};
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static BUTTON_SPECS: &[OptSpec] = &[
    opt(
        "-activebackground",
        "activeBackground",
        "Foreground",
        "white",
        OptKind::Color,
    ),
    opt(
        "-activeforeground",
        "activeForeground",
        "Background",
        "black",
        OptKind::Color,
    ),
    opt("-anchor", "anchor", "Anchor", "center", OptKind::Anchor),
    opt("-bitmap", "bitmap", "Bitmap", "", OptKind::Str),
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-command", "command", "Command", "", OptKind::Str),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-height", "height", "Height", "0", OptKind::Int),
    opt("-padx", "padX", "Pad", "3", OptKind::Pixels),
    opt("-pady", "padY", "Pad", "1", OptKind::Pixels),
    opt("-relief", "relief", "Relief", "raised", OptKind::Relief),
    opt("-state", "state", "State", "normal", OptKind::Str),
    opt("-text", "text", "Text", "", OptKind::Str),
    opt("-value", "value", "Value", "", OptKind::Str),
    opt("-variable", "variable", "Variable", "", OptKind::Str),
    opt("-width", "width", "Width", "0", OptKind::Int),
];

static LABEL_SPECS: &[OptSpec] = &[
    opt("-anchor", "anchor", "Anchor", "center", OptKind::Anchor),
    opt("-bitmap", "bitmap", "Bitmap", "", OptKind::Str),
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "0",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-height", "height", "Height", "0", OptKind::Int),
    opt("-padx", "padX", "Pad", "3", OptKind::Pixels),
    opt("-pady", "padY", "Pad", "1", OptKind::Pixels),
    opt("-relief", "relief", "Relief", "flat", OptKind::Relief),
    opt("-text", "text", "Text", "", OptKind::Str),
    opt("-width", "width", "Width", "0", OptKind::Int),
];

/// Which member of the family this widget is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ButtonKind {
    Label,
    Button,
    CheckButton,
    RadioButton,
}

/// The shared widget implementation.
pub struct ButtonWidget {
    kind: ButtonKind,
    config: ConfigStore,
    /// Pointer is inside the widget (drawn with the active colors).
    active: Cell<bool>,
    /// Mouse button held down over the widget (drawn sunken).
    pressed: Cell<bool>,
    /// The `(variable, trace id)` currently watched, so the indicator
    /// redraws when the variable changes from anywhere (set via a Tcl
    /// variable trace, exactly as real Tk tracks `-variable`).
    var_trace: std::cell::RefCell<Option<(String, u64)>>,
}

impl ButtonWidget {
    fn new(kind: ButtonKind) -> Rc<ButtonWidget> {
        let specs = if kind == ButtonKind::Label {
            LABEL_SPECS
        } else {
            BUTTON_SPECS
        };
        Rc::new(ButtonWidget {
            kind,
            config: ConfigStore::new(specs),
            active: Cell::new(false),
            pressed: Cell::new(false),
            var_trace: std::cell::RefCell::new(None),
        })
    }

    /// Pixel width of the selection indicator, if this kind has one.
    fn indicator_space(&self, line_height: i64) -> i64 {
        match self.kind {
            ButtonKind::CheckButton | ButtonKind::RadioButton => line_height + 4,
            _ => 0,
        }
    }

    /// Is the indicator currently on (variable matches)?
    fn selected(&self, app: &TkApp) -> bool {
        let var = self.config.get("-variable");
        if var.is_empty() {
            return false;
        }
        let value = app.interp().get_var_at(0, &var, None).unwrap_or_default();
        match self.kind {
            ButtonKind::CheckButton => value == "1",
            ButtonKind::RadioButton => !value.is_empty() && value == self.config.get("-value"),
            _ => false,
        }
    }

    /// Runs the widget's action: toggles/sets the variable, then evaluates
    /// the `-command` script (Section 4's `print Hello!\n` example).
    fn invoke(&self, app: &TkApp, path: &str) -> TclResult {
        if self.config.get("-state") == "disabled" {
            return Ok(String::new());
        }
        let var = self.config.get("-variable");
        match self.kind {
            ButtonKind::CheckButton if !var.is_empty() => {
                let cur = app.interp().get_var_at(0, &var, None).unwrap_or_default();
                let next = if cur == "1" { "0" } else { "1" };
                app.interp().set_var_at(0, &var, None, next)?;
            }
            ButtonKind::RadioButton if !var.is_empty() => {
                app.interp()
                    .set_var_at(0, &var, None, &self.config.get("-value"))?;
            }
            _ => {}
        }
        self.schedule_redraw_indicator(app, path);
        let command = self.config.get("-command");
        if command.is_empty() {
            Ok(String::new())
        } else {
            app.interp().eval(&command)
        }
    }

    /// Schedules a redraw narrowed to the bevel ring: a press or release
    /// only changes the relief, whose pixels all live in the border.
    fn schedule_redraw_border(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        if bw == 0 || 2 * bw >= w || 2 * bw >= h {
            return app.schedule_redraw(path);
        }
        // Four disjoint edge strips (disjoint so the corner overlap does
        // not coalesce into the whole window's bounding box).
        app.schedule_redraw_damage(path, Rect::new(0, 0, w, bw));
        app.schedule_redraw_damage(path, Rect::new(0, (h - bw) as i32, w, bw));
        app.schedule_redraw_damage(path, Rect::new(0, bw as i32, bw, h - 2 * bw));
        app.schedule_redraw_damage(path, Rect::new((w - bw) as i32, bw as i32, bw, h - 2 * bw));
    }

    /// Schedules a redraw narrowed to the selection indicator: a
    /// `-variable` change only repaints the check box or radio diamond.
    fn schedule_redraw_indicator(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let Ok((_, metrics)) = app.cache().font(app.conn(), &self.config.get("-font")) else {
            return app.schedule_redraw(path);
        };
        let lh = metrics.line_height() as i64;
        if self.indicator_space(lh) == 0 {
            return app.schedule_redraw(path);
        }
        let bw = self.config.get_pixels("-borderwidth").max(0);
        let size = (lh - 2).max(4);
        let ix = bw + 3;
        let iy = ((rec.height.get() as i64 - size) / 2).max(0);
        app.schedule_redraw_damage(
            path,
            Rect::new(ix as i32, iy as i32, size as u32, size as u32),
        );
    }

    /// Computes and requests the widget's preferred size ("a button widget
    /// might request a size just large enough to contain the text").
    fn request_size(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let (_, metrics) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let bw = self.config.get_pixels("-borderwidth");
        let padx = self.config.get_pixels("-padx");
        let pady = self.config.get_pixels("-pady");
        let lh = metrics.line_height() as i64;
        // A -bitmap displaces the text, as in Tk.
        let bitmap = self.config.get("-bitmap");
        let (content_w, content_h) = if bitmap.is_empty() {
            let text = self.config.get("-text");
            let chars = self.config.get_int("-width");
            let text_w = if chars > 0 {
                metrics.char_width as i64 * chars
            } else {
                metrics.text_width(&text) as i64
            };
            (text_w, lh * self.config.get_int("-height").max(1))
        } else {
            let (_, w, h) = app.cache().bitmap(app.conn(), &bitmap)?;
            (w as i64, h as i64)
        };
        let w = content_w + self.indicator_space(lh) + 2 * (padx + bw) + 2;
        let h = content_h + 2 * (pady + bw) + 2;
        app.geometry_request(path, w.max(1) as u32, h.max(1) as u32);
        Ok(())
    }
}

/// Registers `label`, `button`, `checkbutton`, and `radiobutton`.
pub fn register(app: &TkApp) {
    app.register_command("label", |app, _i, argv| {
        create_widget(app, argv, ButtonWidget::new(ButtonKind::Label))
    });
    app.register_command("button", |app, _i, argv| {
        create_widget(app, argv, ButtonWidget::new(ButtonKind::Button))
    });
    app.register_command("checkbutton", |app, _i, argv| {
        create_widget(app, argv, ButtonWidget::new(ButtonKind::CheckButton))
    });
    app.register_command("radiobutton", |app, _i, argv| {
        create_widget(app, argv, ButtonWidget::new(ButtonKind::RadioButton))
    });
}

impl WidgetOps for ButtonWidget {
    fn class(&self) -> &'static str {
        match self.kind {
            ButtonKind::Label => "Label",
            ButtonKind::Button => "Button",
            ButtonKind::CheckButton => "CheckButton",
            ButtonKind::RadioButton => "RadioButton",
        }
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match (self.kind, sub) {
            (ButtonKind::Label, other) => Err(bad_subcommand(path, other, "configure")),
            (_, "invoke") => self.invoke(app, path),
            (_, "activate") => {
                self.active.set(true);
                app.schedule_redraw(path);
                Ok(String::new())
            }
            (_, "deactivate") => {
                self.active.set(false);
                app.schedule_redraw(path);
                Ok(String::new())
            }
            (ButtonKind::Button, "flash") => {
                // "causes the button to change colors back and forth a few
                // times" — each toggle redraws synchronously.
                for _ in 0..2 {
                    self.active.set(true);
                    self.redraw(app, path);
                    self.active.set(false);
                    self.redraw(app, path);
                }
                Ok(String::new())
            }
            (ButtonKind::CheckButton, "select") | (ButtonKind::RadioButton, "select") => {
                let var = self.config.get("-variable");
                if !var.is_empty() {
                    let v = if self.kind == ButtonKind::CheckButton {
                        "1".to_string()
                    } else {
                        self.config.get("-value")
                    };
                    app.interp().set_var_at(0, &var, None, &v)?;
                }
                self.schedule_redraw_indicator(app, path);
                Ok(String::new())
            }
            (ButtonKind::CheckButton, "deselect") => {
                let var = self.config.get("-variable");
                if !var.is_empty() {
                    app.interp().set_var_at(0, &var, None, "0")?;
                }
                self.schedule_redraw_indicator(app, path);
                Ok(String::new())
            }
            (ButtonKind::CheckButton, "toggle") => {
                let var = self.config.get("-variable");
                if !var.is_empty() {
                    let cur = app.interp().get_var_at(0, &var, None).unwrap_or_default();
                    let next = if cur == "1" { "0" } else { "1" };
                    app.interp().set_var_at(0, &var, None, next)?;
                }
                self.schedule_redraw_indicator(app, path);
                Ok(String::new())
            }
            (_, other) => Err(bad_subcommand(
                path,
                other,
                "activate, configure, deactivate, flash, invoke, select, deselect, or toggle",
            )),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let pixel = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, pixel);
        let cursor = self.config.get("-cursor");
        if !cursor.is_empty() {
            let c = app.cache().cursor(app.conn(), &cursor)?;
            app.conn().define_cursor(rec.xid, c);
        }
        self.request_size(app, path)?;
        // Watch the -variable (if any) so external writes — other widgets
        // sharing a radio group, scripts, even `send` — update the display.
        if matches!(self.kind, ButtonKind::CheckButton | ButtonKind::RadioButton) {
            let var = self.config.get("-variable");
            let mut slot = self.var_trace.borrow_mut();
            let changed = slot.as_ref().map(|(v, _)| v != &var).unwrap_or(true);
            if changed {
                if let Some((old, id)) = slot.take() {
                    app.interp().trace_remove(&old, id);
                }
                if !var.is_empty() {
                    let weak = std::rc::Rc::downgrade(&app.inner);
                    let path_owned = path.to_string();
                    let id = app.interp().trace_variable(
                        &var,
                        tcl::TraceOps {
                            write: true,
                            unset: true,
                            ..Default::default()
                        },
                        tcl::TraceAction::Native(Rc::new(move |_i, _n1, _n2, _op| {
                            if let Some(inner) = weak.upgrade() {
                                let app = crate::app::TkApp { inner };
                                if let Some(rec) = app.window(&path_owned) {
                                    let widget = rec.widget.borrow().clone();
                                    match widget {
                                        Some(w) => w.variable_changed(&app, &path_owned),
                                        None => app.schedule_redraw(&path_owned),
                                    }
                                }
                            }
                        })),
                    );
                    *slot = Some((var, id));
                }
            }
        }
        app.schedule_redraw(path);
        Ok(())
    }

    fn destroyed(&self, app: &TkApp, _path: &str) {
        if let Some((var, id)) = self.var_trace.borrow_mut().take() {
            app.interp().trace_remove(&var, id);
        }
    }

    fn variable_changed(&self, app: &TkApp, path: &str) {
        self.schedule_redraw_indicator(app, path);
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        if self.kind == ButtonKind::Label {
            if matches!(ev, Event::Expose { .. }) {
                app.expose_damage(path, ev);
            }
            return;
        }
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::EnterNotify { .. } => {
                // The active colors repaint everything.
                self.active.set(true);
                app.schedule_redraw(path);
            }
            Event::LeaveNotify { .. } => {
                self.active.set(false);
                self.pressed.set(false);
                app.schedule_redraw(path);
            }
            Event::ButtonPress { button: 1, .. } => {
                self.pressed.set(true);
                self.schedule_redraw_border(app, path);
            }
            Event::ButtonRelease { button: 1, .. } if self.pressed.replace(false) => {
                self.schedule_redraw_border(app, path);
                // The release completes the click: run the action.
                let widget_path = path.to_string();
                let this = app.clone();
                // Invoke directly; errors are background errors.
                if let Some(rec) = this.window(&widget_path) {
                    let widget = rec.widget.borrow().clone();
                    if let Some(w) = widget {
                        if let Err(e) =
                            w.command(&this, &widget_path, &[widget_path.clone(), "invoke".into()])
                        {
                            if e.code == tcl::Code::Error {
                                this.eval_background(&format!(
                                    "error {}",
                                    tcl::format_list(&[e.msg])
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let active = self.active.get() && self.kind != ButtonKind::Label;
        let bg_name = if active {
            self.config.get("-activebackground")
        } else {
            self.config.get("-background")
        };
        let fg_name = if active {
            self.config.get("-activeforeground")
        } else {
            self.config.get("-foreground")
        };
        let Ok(border) = cache.border(conn, &bg_name) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &fg_name) else {
            return;
        };
        let Ok((font, metrics)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        // Background fill.
        let bg_gc = cache.gc(
            conn,
            GcValues {
                foreground: border.bg,
                ..Default::default()
            },
        );
        conn.fill_rectangle(rec.xid, bg_gc, 0, 0, w, h);
        // 3-D border.
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        let relief = if self.pressed.get() {
            Relief::Sunken
        } else {
            self.config.get_relief("-relief")
        };
        draw_3d_rect(conn, cache, rec.xid, border, 0, 0, w, h, bw, relief);
        // Indicator for check/radio buttons.
        let lh = metrics.line_height() as i64;
        let ind = self.indicator_space(lh);
        if ind > 0 {
            let size = (lh - 2).max(4) as u32;
            let ix = bw as i32 + 3;
            let iy = (h as i64 - size as i64) as i32 / 2;
            let fg_gc = cache.gc(
                conn,
                GcValues {
                    foreground: fg,
                    ..Default::default()
                },
            );
            if self.kind == ButtonKind::CheckButton {
                conn.draw_rectangle(rec.xid, fg_gc, ix, iy, size, size);
                if self.selected(app) {
                    conn.fill_rectangle(rec.xid, fg_gc, ix + 2, iy + 2, size - 4, size - 4);
                }
            } else {
                // Radio: a diamond outline, filled when selected.
                let cx = ix + size as i32 / 2;
                let cy = iy + size as i32 / 2;
                let r = size as i32 / 2;
                conn.draw_line(rec.xid, fg_gc, cx, cy - r, cx + r, cy);
                conn.draw_line(rec.xid, fg_gc, cx + r, cy, cx, cy + r);
                conn.draw_line(rec.xid, fg_gc, cx, cy + r, cx - r, cy);
                conn.draw_line(rec.xid, fg_gc, cx - r, cy, cx, cy - r);
                if self.selected(app) {
                    conn.fill_rectangle(rec.xid, fg_gc, cx - r / 2, cy - r / 2, r as u32, r as u32);
                }
            }
        }
        // Content: a bitmap displaces text when configured.
        let bitmap = self.config.get("-bitmap");
        if !bitmap.is_empty() {
            if let Ok((bm, bm_w, bm_h)) = cache.bitmap(conn, &bitmap) {
                let gc = cache.gc(
                    conn,
                    GcValues {
                        foreground: fg,
                        ..Default::default()
                    },
                );
                let pad = bw as i32 + self.config.get_pixels("-padx") as i32;
                let anchor = self.config.get_anchor("-anchor");
                let ind = self.indicator_space(metrics.line_height() as i64) as i32;
                let (bx, by) =
                    anchor.place(w as i32 - ind, h as i32, bm_w as i32, bm_h as i32, pad);
                conn.copy_bitmap(rec.xid, gc, ind + bx, by, bm);
            }
            return;
        }
        let text = self.config.get("-text");
        if !text.is_empty() {
            let text_gc = cache.gc(
                conn,
                GcValues {
                    foreground: fg,
                    font,
                    ..Default::default()
                },
            );
            let tw = metrics.text_width(&text) as i32;
            let th = metrics.line_height() as i32;
            let pad = bw as i32 + self.config.get_pixels("-padx") as i32;
            let anchor = self.config.get_anchor("-anchor");
            let avail_x = ind as i32;
            let (tx, ty) = anchor.place(w as i32 - avail_x, h as i32, tw, th, pad);
            conn.draw_string(
                rec.xid,
                text_gc,
                avail_x + tx,
                ty + metrics.ascent as i32,
                &text,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn paper_section4_button_example() {
        let env = TkEnv::new();
        let app = env.app("t");
        let buf = app.interp().capture_output();
        app.eval("button .hello -bg Red -text \"Hello, world\" -command \"print Hello!\\n\"")
            .unwrap();
        app.eval("pack append . .hello {top}").unwrap();
        app.update();
        // Click it with the mouse.
        let rec = app.window(".hello").unwrap();
        assert!(rec.mapped.get());
        assert!(rec.req_width.get() > 0);
        env.display().move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 / 2,
        );
        env.display().click(1);
        env.dispatch_all();
        // The \n in the quoted -command value became a command separator
        // when the stored script was evaluated, so `print` got "Hello!".
        assert_eq!(&*buf.borrow(), "Hello!");
    }

    #[test]
    fn paper_section4_reconfigure() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .hello -bg Red -text hi -command {}")
            .unwrap();
        app.eval(".hello flash").unwrap();
        app.eval(".hello configure -bg PalePink1 -relief sunken")
            .unwrap();
        let info = app.eval(".hello configure -background").unwrap();
        assert!(info.contains("PalePink1"), "{info}");
        assert_eq!(
            app.eval(".hello configure -relief").unwrap(),
            "-relief relief Relief raised sunken"
        );
    }

    #[test]
    fn invoke_runs_command() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -command {set clicked 1}").unwrap();
        app.eval(".b invoke").unwrap();
        assert_eq!(app.eval("set clicked").unwrap(), "1");
    }

    #[test]
    fn disabled_button_ignores_invoke() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set clicked 0; button .b -state disabled -command {set clicked 1}")
            .unwrap();
        app.eval(".b invoke").unwrap();
        assert_eq!(app.eval("set clicked").unwrap(), "0");
    }

    #[test]
    fn checkbutton_variable_toggles() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("checkbutton .c -variable flag").unwrap();
        app.eval(".c invoke").unwrap();
        assert_eq!(app.eval("set flag").unwrap(), "1");
        app.eval(".c invoke").unwrap();
        assert_eq!(app.eval("set flag").unwrap(), "0");
        app.eval(".c select").unwrap();
        assert_eq!(app.eval("set flag").unwrap(), "1");
        app.eval(".c deselect").unwrap();
        assert_eq!(app.eval("set flag").unwrap(), "0");
        app.eval(".c toggle").unwrap();
        assert_eq!(app.eval("set flag").unwrap(), "1");
    }

    #[test]
    fn radiobuttons_share_variable() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("radiobutton .r1 -variable choice -value one")
            .unwrap();
        app.eval("radiobutton .r2 -variable choice -value two")
            .unwrap();
        app.eval(".r1 invoke").unwrap();
        assert_eq!(app.eval("set choice").unwrap(), "one");
        app.eval(".r2 invoke").unwrap();
        assert_eq!(app.eval("set choice").unwrap(), "two");
    }

    #[test]
    fn label_size_tracks_text() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("label .l -text abc -font fixed").unwrap();
        let w1 = app.window(".l").unwrap().req_width.get();
        app.eval(".l configure -text abcdef").unwrap();
        let w2 = app.window(".l").unwrap().req_width.get();
        assert!(w2 > w1, "{w1} -> {w2}");
        // Explicit -width in characters pins the size.
        app.eval(".l configure -width 10").unwrap();
        let w3 = app.window(".l").unwrap().req_width.get();
        app.eval(".l configure -text x").unwrap();
        assert_eq!(app.window(".l").unwrap().req_width.get(), w3);
    }

    #[test]
    fn label_rejects_button_subcommands() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("label .l").unwrap();
        assert!(app.eval(".l invoke").is_err());
        assert!(app.eval(".l flash").is_err());
    }

    #[test]
    fn command_error_reaches_tkerror() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("proc tkerror {m} {global bg; set bg $m}").unwrap();
        app.eval("button .b -command {error kaboom}").unwrap();
        app.eval("pack append . .b {top}").unwrap();
        app.update();
        let rec = app.window(".b").unwrap();
        env.display().move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 / 2,
        );
        env.display().click(1);
        env.dispatch_all();
        assert_eq!(app.eval("set bg").unwrap(), "kaboom");
    }

    #[test]
    fn enter_leave_change_active_state() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("button .b -text x -activebackground white -background gray")
            .unwrap();
        app.eval("pack append . .b {top}").unwrap();
        app.update();
        let rec = app.window(".b").unwrap();
        env.display().move_pointer(rec.x.get() + 5, rec.y.get() + 5);
        env.dispatch_all();
        // Just ensure the event machinery ran without error; the visual
        // check happens via the framebuffer in integration tests.
        assert!(rec.mapped.get());
    }
}

#[cfg(test)]
mod trace_tests {
    use crate::app::TkEnv;

    #[test]
    fn variable_write_schedules_indicator_redraw() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("checkbutton .c -variable flag -text Flag")
            .unwrap();
        app.eval("pack append . .c {top}").unwrap();
        app.update();
        // An external write redraws the indicator: verify by pixel count
        // difference between unchecked and checked states.
        let rec = app.window(".c").unwrap();
        let black = xsim::Rgb::new(0, 0, 0);
        let before = env
            .display()
            .with_server(|s| s.window_surface(rec.xid).unwrap().count_pixels(black));
        app.eval("set flag 1").unwrap();
        app.update();
        let after = env
            .display()
            .with_server(|s| s.window_surface(rec.xid).unwrap().count_pixels(black));
        assert!(
            after > before,
            "checked state paints more: {before} -> {after}"
        );
    }

    #[test]
    fn radio_group_redraws_all_members() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("radiobutton .r1 -variable choice -value a -text A")
            .unwrap();
        app.eval("radiobutton .r2 -variable choice -value b -text B")
            .unwrap();
        app.eval("pack append . .r1 {top} .r2 {top}").unwrap();
        app.update();
        // Selecting via one member updates the variable; both members'
        // traces fire (each is watching the same variable).
        app.eval(".r1 invoke").unwrap();
        app.update();
        app.eval("set choice b").unwrap();
        app.update();
        assert_eq!(app.eval("set choice").unwrap(), "b");
        // Two live traces on the shared variable.
        let vinfo = app.eval("trace vinfo choice").unwrap();
        assert_eq!(vinfo.matches("native").count(), 2, "{vinfo}");
    }

    #[test]
    fn destroy_removes_variable_trace() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("checkbutton .c -variable flag").unwrap();
        app.eval("destroy .c").unwrap();
        assert_eq!(app.eval("trace vinfo flag").unwrap(), "");
    }
}

#[cfg(test)]
mod bitmap_tests {
    use crate::app::TkEnv;

    #[test]
    fn label_with_bitmap_sizes_and_draws() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("label .l -bitmap gray50 -fg black -bg white -padx 0 -pady 0")
            .unwrap();
        app.eval("pack append . .l {top}").unwrap();
        app.update();
        let rec = app.window(".l").unwrap();
        // 16x16 bitmap plus the 2px fudge, no border on labels.
        assert!(rec.req_width.get() >= 16 && rec.req_width.get() <= 20);
        // Half the bitmap's pixels are set, drawn in the foreground.
        let black = xsim::Rgb::new(0, 0, 0);
        let painted = env
            .display()
            .with_server(|s| s.window_surface(rec.xid).unwrap().count_pixels(black));
        assert_eq!(painted, 128, "gray50 paints half of 16x16");
    }

    #[test]
    fn bitmap_from_paper_at_file_form() {
        // "@star for a bitmap stored in a file named star" (Section 3.3).
        let env = TkEnv::new();
        let app = env.app("t");
        let path = std::env::temp_dir().join("rtk_button_star.xbm");
        std::fs::write(
            &path,
            "#define s_width 4\n#define s_height 4\nstatic char s_bits[] = {0x0f,0x0f,0x0f,0x0f};\n",
        )
        .unwrap();
        app.eval(&format!("button .b -bitmap @{}", path.display()))
            .unwrap();
        let rec = app.window(".b").unwrap();
        assert!(rec.req_width.get() >= 4);
        // Unknown bitmap names fail cleanly at configure time.
        assert!(app.eval(".b configure -bitmap bogus").is_err());
    }
}
