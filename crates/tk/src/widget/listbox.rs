//! The listbox widget.
//!
//! Displays a list of strings, one per line, with a scrollable view and a
//! range selection (Figure 10 shows three darkened items selected). When
//! the view changes, the listbox invokes its `-scroll` command so an
//! attached scrollbar can update itself; the scrollbar in turn drives the
//! listbox through its `view` widget command — the Section 4 example of
//! independent widgets composed with Tcl.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues, Rect};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::draw_3d_rect;
use crate::selection::NativeHandler;
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "white",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt(
        "-geometry",
        "geometry",
        "Geometry",
        "15x10",
        OptKind::Geometry,
    ),
    opt("-relief", "relief", "Relief", "flat", OptKind::Relief),
    opt(
        "-scroll",
        "scrollCommand",
        "ScrollCommand",
        "",
        OptKind::Str,
    ),
    synonym("-scrollcommand", "-scroll"),
    opt(
        "-selectbackground",
        "selectBackground",
        "Foreground",
        "lightsteelblue",
        OptKind::Color,
    ),
];

/// The listbox widget state.
pub struct Listbox {
    config: ConfigStore,
    items: RefCell<Vec<String>>,
    /// Index of the first visible item.
    top: Cell<usize>,
    /// Selected range `(first, last)`, inclusive.
    selection: Cell<Option<(usize, usize)>>,
    /// Anchor of an in-progress mouse selection.
    sel_anchor: Cell<Option<usize>>,
}

/// Registers the `listbox` creation command.
pub fn register(app: &TkApp) {
    app.register_command("listbox", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Listbox {
                config: ConfigStore::new(SPECS),
                items: RefCell::new(Vec::new()),
                top: Cell::new(0),
                selection: Cell::new(None),
                sel_anchor: Cell::new(None),
            }),
        )
    });
}

impl Listbox {
    /// Number of fully visible lines.
    fn visible_lines(&self, app: &TkApp, path: &str) -> usize {
        let Some(rec) = app.window(path) else {
            return 1;
        };
        let Ok((_, m)) = app.cache().font(app.conn(), &self.config.get("-font")) else {
            return 1;
        };
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        let inner = rec.height.get().saturating_sub(2 * bw + 2);
        (inner / m.line_height()).max(1) as usize
    }

    /// Parses an item index (`end` allowed).
    fn index(&self, spec: &str) -> Result<usize, Exception> {
        let n = self.items.borrow().len();
        if spec == "end" {
            return Ok(n.saturating_sub(1));
        }
        spec.parse::<usize>()
            .map_err(|_| Exception::error(format!("bad listbox index \"{spec}\"")))
    }

    /// Notifies the attached scrollbar of the current view (the `-scroll`
    /// command gets `totalUnits windowUnits firstUnit lastUnit` appended).
    fn notify_scroll(&self, app: &TkApp, path: &str) {
        let cmd = self.config.get("-scroll");
        if cmd.is_empty() {
            return;
        }
        let total = self.items.borrow().len();
        let window = self.visible_lines(app, path);
        let first = self.top.get();
        let last = (first + window).min(total).saturating_sub(1);
        let call = format!("{cmd} {total} {window} {first} {last}");
        app.eval_background(&call);
    }

    /// Scrolls so that `index` is at the top (the `view`/`yview` command).
    fn set_view(&self, app: &TkApp, path: &str, index: usize) {
        let total = self.items.borrow().len();
        let window = self.visible_lines(app, path);
        let max_top = total.saturating_sub(window);
        let old_top = self.top.get();
        self.top.set(index.min(max_top));
        self.scroll_blit(app, path, old_top, self.top.get());
        self.notify_scroll(app, path);
    }

    /// Content-area geometry: `(y0, line_height, visible_lines)`. `None`
    /// before the window or font exists.
    fn content_geometry(&self, app: &TkApp, path: &str) -> Option<(i32, u32, usize)> {
        app.window(path)?;
        let (_, m) = app
            .cache()
            .font(app.conn(), &self.config.get("-font"))
            .ok()?;
        let bw = self.config.get_pixels("-borderwidth").max(0) as i32;
        Some((bw + 1, m.line_height(), self.visible_lines(app, path)))
    }

    /// Scrolls the already-drawn lines with a CopyArea and damages only
    /// the newly exposed band. The blit is issued in both damage modes so
    /// the request stream stays identical; only the repaint clip differs.
    /// Rows are copied at full window width — the vertical border strips
    /// are uniform over the copied span, so blitting them is the identity.
    fn scroll_blit(&self, app: &TkApp, path: &str, old_top: usize, new_top: usize) {
        let Some((y, lh, lines)) = self.content_geometry(app, path) else {
            return app.schedule_redraw(path);
        };
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let d = new_top as i64 - old_top as i64;
        // A blit would shift pending damage out from under its repaint,
        // so scrolls arriving on a dirty window repaint in full.
        if d == 0 || d.unsigned_abs() as usize >= lines || app.has_pending_damage(path) {
            return app.schedule_redraw(path);
        }
        let w = rec.width.get();
        let keep = (lines - d.unsigned_abs() as usize) as u32 * lh;
        let band = d.unsigned_abs() as u32 * lh;
        if d > 0 {
            app.conn()
                .copy_area(rec.xid, 0, y + band as i32, w, keep, 0, y);
            app.schedule_redraw_damage(path, Rect::new(0, y + keep as i32, w, band));
        } else {
            app.conn()
                .copy_area(rec.xid, 0, y, w, keep, 0, y + band as i32);
            app.schedule_redraw_damage(path, Rect::new(0, y, w, band));
        }
    }

    /// Damages from the line showing item `from` down to the bottom of
    /// the content area: inserts and deletes shift everything below the
    /// edit point, but never the lines above it.
    fn damage_items_from(&self, app: &TkApp, path: &str, from: usize) {
        let Some((y, lh, lines)) = self.content_geometry(app, path) else {
            return app.schedule_redraw(path);
        };
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let top = self.top.get();
        if from < top {
            return app.schedule_redraw(path);
        }
        let line = from - top;
        if line >= lines {
            // Entirely below the view: nothing visible moves, but both
            // modes must still schedule the same repaint.
            return app.schedule_redraw_damage(path, Rect::new(0, 0, 1, 1));
        }
        let dy = y + line as i32 * lh as i32;
        let band = (lines - line) as u32 * lh;
        app.schedule_redraw_damage(path, Rect::new(0, dy, rec.width.get(), band));
    }

    /// Damages the lines showing items `[first, last]`, clamped to the
    /// view (selection changes touch only the affected lines).
    fn damage_item_lines(&self, app: &TkApp, path: &str, first: usize, last: usize) {
        let Some((y, lh, lines)) = self.content_geometry(app, path) else {
            return app.schedule_redraw(path);
        };
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let top = self.top.get();
        let lo = first.max(top) - top;
        let hi_excl = (last + 1).min(top + lines).saturating_sub(top);
        if lo >= hi_excl {
            return app.schedule_redraw_damage(path, Rect::new(0, 0, 1, 1));
        }
        let dy = y + lo as i32 * lh as i32;
        app.schedule_redraw_damage(
            path,
            Rect::new(0, dy, rec.width.get(), (hi_excl - lo) as u32 * lh),
        );
    }

    /// The item index at pixel `y`, clamped to real items.
    fn nearest(&self, app: &TkApp, _path: &str, y: i32) -> usize {
        let Ok((_, m)) = app.cache().font(app.conn(), &self.config.get("-font")) else {
            return 0;
        };
        let bw = self.config.get_pixels("-borderwidth").max(0);
        let line = ((y as i64 - bw - 1).max(0) / m.line_height() as i64) as usize;
        let idx = self.top.get() + line;
        idx.min(self.items.borrow().len().saturating_sub(1))
    }

    /// Makes `(first, last)` the selection and claims the X selection with
    /// a handler that returns the selected lines.
    fn select_range(&self, app: &TkApp, path: &str, first: usize, last: usize) {
        let (first, last) = if first <= last {
            (first, last)
        } else {
            (last, first)
        };
        let old = self.selection.get();
        self.selection.set(Some((first, last)));
        let path_owned = path.to_string();
        let path_for_lost = path.to_string();
        crate::selection::claim(
            app,
            path,
            Some(NativeHandler {
                fetch: Rc::new(move |app: &TkApp| {
                    let Some(rec) = app.window(&path_owned) else {
                        return String::new();
                    };
                    let widget = rec.widget.borrow().clone();
                    let Some(widget) = widget else {
                        return String::new();
                    };
                    // Downcast through the widget command: `curselection`
                    // gives indices; fetch the items directly instead.
                    let mut out = String::new();
                    if let Ok(sel) = widget.command(
                        app,
                        &path_owned,
                        &[path_owned.clone(), "curselection".into()],
                    ) {
                        for (n, idx) in sel.split_whitespace().enumerate() {
                            if let Ok(text) = widget.command(
                                app,
                                &path_owned,
                                &[path_owned.clone(), "get".into(), idx.to_string()],
                            ) {
                                if n > 0 {
                                    out.push('\n');
                                }
                                out.push_str(&text);
                            }
                        }
                    }
                    out
                }),
                lost: Rc::new(move |app: &TkApp| {
                    if let Some(rec) = app.window(&path_for_lost) {
                        let widget = rec.widget.borrow().clone();
                        if let Some(w) = widget {
                            let _ = w.command(
                                app,
                                &path_for_lost,
                                &[path_for_lost.clone(), "select".into(), "clear".into()],
                            );
                        }
                    }
                }),
            }),
        );
        let (lo, hi) = match old {
            Some((a, b)) => (a.min(first), b.max(last)),
            None => (first, last),
        };
        self.damage_item_lines(app, path, lo, hi);
    }
}

impl WidgetOps for Listbox {
    fn class(&self) -> &'static str {
        "Listbox"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "insert" => {
                if argv.len() < 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} insert index element ?element ...?\""
                    )));
                }
                let at = if argv[2] == "end" {
                    self.items.borrow().len()
                } else {
                    self.index(&argv[2])?.min(self.items.borrow().len())
                };
                {
                    let mut items = self.items.borrow_mut();
                    for (n, e) in argv[3..].iter().enumerate() {
                        items.insert(at + n, e.clone());
                    }
                }
                self.damage_items_from(app, path, at);
                self.notify_scroll(app, path);
                Ok(String::new())
            }
            "delete" => {
                if argv.len() != 3 && argv.len() != 4 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} delete first ?last?\""
                    )));
                }
                if self.items.borrow().is_empty() {
                    return Ok(String::new());
                }
                let first = self.index(&argv[2])?;
                let last = if argv.len() == 4 {
                    self.index(&argv[3])?
                } else {
                    first
                };
                {
                    let mut items = self.items.borrow_mut();
                    let last = last.min(items.len().saturating_sub(1));
                    if first < items.len() && first <= last {
                        items.drain(first..=last);
                    }
                }
                let old_sel = self.selection.get();
                self.selection.set(None);
                // Clearing the selection also dirties its old lines.
                let from = match old_sel {
                    Some((a, _)) => first.min(a),
                    None => first,
                };
                self.damage_items_from(app, path, from);
                self.notify_scroll(app, path);
                Ok(String::new())
            }
            "get" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} get index\""
                    )));
                }
                let i = self.index(&argv[2])?;
                self.items.borrow().get(i).cloned().ok_or_else(|| {
                    Exception::error(format!("listbox index \"{}\" out of range", argv[2]))
                })
            }
            "size" => Ok(self.items.borrow().len().to_string()),
            "curselection" => {
                let out: Vec<String> = match self.selection.get() {
                    Some((a, b)) => (a..=b.min(self.items.borrow().len().saturating_sub(1)))
                        .map(|i| i.to_string())
                        .collect(),
                    None => Vec::new(),
                };
                Ok(out.join(" "))
            }
            "select" => {
                // select from i | select to i | select clear
                match argv.get(2).map(String::as_str) {
                    Some("from") => {
                        let i = self.index(argv.get(3).ok_or_else(|| {
                            Exception::error("wrong # args: select from index")
                        })?)?;
                        self.sel_anchor.set(Some(i));
                        self.select_range(app, path, i, i);
                        Ok(String::new())
                    }
                    Some("to") => {
                        let i = self
                            .index(argv.get(3).ok_or_else(|| {
                                Exception::error("wrong # args: select to index")
                            })?)?;
                        let anchor = self.sel_anchor.get().unwrap_or(i);
                        self.select_range(app, path, anchor, i);
                        Ok(String::new())
                    }
                    Some("clear") => {
                        let old = self.selection.get();
                        self.selection.set(None);
                        match old {
                            Some((a, b)) => self.damage_item_lines(app, path, a, b),
                            None => app.schedule_redraw(path),
                        }
                        Ok(String::new())
                    }
                    _ => Err(Exception::error(
                        "bad select option: should be from, to, or clear",
                    )),
                }
            }
            "view" | "yview" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} view index\""
                    )));
                }
                let i = self.index(&argv[2]).unwrap_or(0);
                self.set_view(app, path, i);
                Ok(String::new())
            }
            "nearest" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} nearest y\""
                    )));
                }
                let y: i32 = argv[2]
                    .parse()
                    .map_err(|_| Exception::error("expected integer"))?;
                Ok(self.nearest(app, path, y).to_string())
            }
            other => Err(bad_subcommand(
                path,
                other,
                "configure, curselection, delete, get, insert, nearest, select, size, or view",
            )),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        // Requested size from -geometry (chars x lines), as in Figure 9's
        // `-geometry 20x20`.
        let (cols, rows) = crate::draw::parse_geometry(&self.config.get("-geometry"))?;
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        let w = cols * m.char_width + 2 * (bw + 1);
        let h = rows * m.line_height() + 2 * (bw + 1);
        app.geometry_request(path, w, h);
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::ConfigureNotify { .. } => {
                // A resize changes how many lines fit: tell the scrollbar.
                self.notify_scroll(app, path);
            }
            Event::ButtonPress { button: 1, y, .. } => {
                let i = self.nearest(app, path, *y);
                self.sel_anchor.set(Some(i));
                self.select_range(app, path, i, i);
            }
            Event::MotionNotify { state, y, .. } if state & xsim::event::state::BUTTON1 != 0 => {
                let i = self.nearest(app, path, *y);
                let anchor = self.sel_anchor.get().unwrap_or(i);
                self.select_range(app, path, anchor, i);
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok(selbg) = cache.color(conn, &self.config.get("-selectbackground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        draw_3d_rect(
            conn,
            cache,
            rec.xid,
            border,
            0,
            0,
            w,
            h,
            bw,
            self.config.get_relief("-relief"),
        );
        let items = self.items.borrow();
        let top = self.top.get();
        let lines = self.visible_lines(app, path);
        let text_gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let sel_gc = cache.gc(
            conn,
            GcValues {
                foreground: selbg,
                ..Default::default()
            },
        );
        let x0 = bw as i32 + 2;
        for (line, idx) in (top..items.len()).take(lines).enumerate() {
            let y0 = bw as i32 + 1 + line as i32 * m.line_height() as i32;
            if let Some((a, b)) = self.selection.get() {
                if idx >= a && idx <= b {
                    conn.fill_rectangle(
                        rec.xid,
                        sel_gc,
                        bw as i32 + 1,
                        y0,
                        w - 2 * (bw + 1),
                        m.line_height(),
                    );
                }
            }
            conn.draw_string(rec.xid, text_gc, x0, y0 + m.ascent as i32, &items[idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    fn setup() -> (TkEnv, crate::app::TkApp) {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("listbox .l -geometry 20x5 -font fixed").unwrap();
        app.eval("pack append . .l {top}").unwrap();
        app.update();
        (env, app)
    }

    #[test]
    fn insert_get_size_delete() {
        let (_env, app) = setup();
        app.eval(".l insert end a b c").unwrap();
        assert_eq!(app.eval(".l size").unwrap(), "3");
        assert_eq!(app.eval(".l get 1").unwrap(), "b");
        assert_eq!(app.eval(".l get end").unwrap(), "c");
        app.eval(".l insert 0 z").unwrap();
        assert_eq!(app.eval(".l get 0").unwrap(), "z");
        app.eval(".l delete 0").unwrap();
        assert_eq!(app.eval(".l get 0").unwrap(), "a");
        app.eval(".l delete 0 end").unwrap();
        assert_eq!(app.eval(".l size").unwrap(), "0");
    }

    #[test]
    fn selection_by_command() {
        let (_env, app) = setup();
        app.eval(".l insert end a b c d e").unwrap();
        app.eval(".l select from 1").unwrap();
        app.eval(".l select to 3").unwrap();
        assert_eq!(app.eval(".l curselection").unwrap(), "1 2 3");
        // The X selection now returns the selected items.
        assert_eq!(app.eval("selection get").unwrap(), "b\nc\nd");
        app.eval(".l select clear").unwrap();
        assert_eq!(app.eval(".l curselection").unwrap(), "");
    }

    #[test]
    fn click_selects_item() {
        let (env, app) = setup();
        app.eval(".l insert end one two three four").unwrap();
        app.update();
        let rec = app.window(".l").unwrap();
        // Click on the second line (line height of `fixed` is 13).
        env.display()
            .move_pointer(rec.x.get() + 10, rec.y.get() + 3 + 13 + 5);
        env.display().click(1);
        env.dispatch_all();
        assert_eq!(app.eval(".l curselection").unwrap(), "1");
        assert_eq!(app.eval("selection get").unwrap(), "two");
    }

    #[test]
    fn view_scrolls_and_notifies_scrollbar() {
        let (_env, app) = setup();
        app.eval("proc record {args} {global scrolled; set scrolled $args}")
            .unwrap();
        app.eval(".l configure -scroll record").unwrap();
        for i in 0..20 {
            app.eval(&format!(".l insert end item{i}")).unwrap();
        }
        app.update();
        app.eval(".l view 10").unwrap();
        app.update();
        // total=20 window=5 first=10 last=14
        assert_eq!(app.eval("set scrolled").unwrap(), "20 5 10 14");
        assert_eq!(app.eval(".l nearest 1").unwrap(), "10");
    }

    #[test]
    fn view_clamps_to_content() {
        let (_env, app) = setup();
        app.eval(".l insert end a b c").unwrap();
        app.update();
        app.eval(".l view 99").unwrap();
        // Only 3 items, 5 visible lines: top stays 0.
        assert_eq!(app.eval(".l nearest 1").unwrap(), "0");
    }

    #[test]
    fn figure9_scroll_option_spelling() {
        let env = TkEnv::new();
        let app = env.app("t");
        // The exact option spelling from the paper's Figure 9.
        app.eval("listbox .list -scroll \".scroll set\" -relief raised -geometry 20x20")
            .unwrap();
        let info = app.eval(".list configure -scroll").unwrap();
        assert!(info.contains(".scroll set"), "{info}");
    }
}
