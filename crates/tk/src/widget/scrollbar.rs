//! The scrollbar widget.
//!
//! A scrollbar displays arrows and a slider reflecting the view of an
//! associated widget. It is connected to that widget purely through Tcl:
//! the associated widget's `-scroll` command calls `.scroll set total
//! window first last`, and user clicks make the scrollbar evaluate its own
//! `-command` with a unit index appended (producing e.g. `.list view 40`,
//! the Section 4 example).

use std::cell::Cell;
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues, Rect};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::{draw_3d_rect, Relief};
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-command", "command", "Command", "", OptKind::Str),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-orient", "orient", "Orient", "vertical", OptKind::Orient),
    opt("-relief", "relief", "Relief", "sunken", OptKind::Relief),
    opt("-width", "width", "Width", "15", OptKind::Pixels),
];

/// The scrollbar's view state, as told to it by `set`.
#[derive(Debug, Clone, Copy, Default)]
struct View {
    total: i64,
    window: i64,
    first: i64,
    last: i64,
}

/// The scrollbar widget.
pub struct Scrollbar {
    config: ConfigStore,
    view: Cell<View>,
    dragging: Cell<bool>,
}

/// Registers the `scrollbar` creation command.
pub fn register(app: &TkApp) {
    app.register_command("scrollbar", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Scrollbar {
                config: ConfigStore::new(SPECS),
                view: Cell::new(View::default()),
                dragging: Cell::new(false),
            }),
        )
    });
}

impl Scrollbar {
    fn vertical(&self) -> bool {
        self.config.get("-orient") != "horizontal"
    }

    /// Arrow-box length (same as the bar thickness, like Tk).
    fn arrow_len(&self, app: &TkApp, path: &str) -> i64 {
        let Some(rec) = app.window(path) else {
            return 15;
        };
        if self.vertical() {
            rec.width.get() as i64
        } else {
            rec.height.get() as i64
        }
    }

    /// Length of the bar along its long axis.
    fn length(&self, app: &TkApp, path: &str) -> i64 {
        let Some(rec) = app.window(path) else {
            return 1;
        };
        if self.vertical() {
            rec.height.get() as i64
        } else {
            rec.width.get() as i64
        }
    }

    /// Pixel span of the slider: `(start, end)` within the trough.
    fn slider_span(&self, app: &TkApp, path: &str) -> (i64, i64) {
        let v = self.view.get();
        let arrow = self.arrow_len(app, path);
        let trough = (self.length(app, path) - 2 * arrow).max(1);
        if v.total <= 0 {
            return (arrow, arrow + trough);
        }
        let a = arrow + trough * v.first.max(0) / v.total;
        let b = arrow + trough * (v.last + 1).min(v.total) / v.total;
        (a, b.max(a + 4))
    }

    /// Damages the trough between the two arrow boxes — the only region
    /// a `set` can change, since the arrows and outer border are static.
    /// Full window width/thickness so the border columns repaint too
    /// (the slider overdraws part of the sunken border).
    fn damage_trough(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else {
            return app.schedule_redraw(path);
        };
        let arrow = self.arrow_len(app, path);
        let trough = self.length(app, path) - 2 * arrow;
        if trough <= 0 {
            return app.schedule_redraw(path);
        }
        let r = if self.vertical() {
            Rect::new(0, arrow as i32, rec.width.get(), trough as u32)
        } else {
            Rect::new(arrow as i32, 0, trough as u32, rec.height.get())
        };
        app.schedule_redraw_damage(path, r);
    }

    /// Evaluates `-command unit`.
    fn scroll_to(&self, app: &TkApp, unit: i64) {
        let cmd = self.config.get("-command");
        if cmd.is_empty() {
            return;
        }
        let v = self.view.get();
        let unit = unit.clamp(0, (v.total - 1).max(0));
        app.eval_background(&format!("{cmd} {unit}"));
    }

    /// Handles a press/drag at position `p` along the long axis.
    fn hit(&self, app: &TkApp, path: &str, p: i64, drag: bool) {
        let v = self.view.get();
        let arrow = self.arrow_len(app, path);
        let len = self.length(app, path);
        let (s0, s1) = self.slider_span(app, path);
        if drag || (p >= s0 && p < s1) {
            // Slider drag: map position to a unit.
            let trough = (len - 2 * arrow).max(1);
            let unit = (p - arrow).clamp(0, trough) * v.total / trough;
            self.dragging.set(true);
            self.scroll_to(app, unit);
        } else if p < arrow {
            self.scroll_to(app, v.first - 1); // up/left arrow: one unit
        } else if p >= len - arrow {
            self.scroll_to(app, v.first + 1); // down/right arrow
        } else if p < s0 {
            self.scroll_to(app, v.first - v.window); // page up
        } else {
            self.scroll_to(app, v.first + v.window); // page down
        }
    }
}

impl WidgetOps for Scrollbar {
    fn class(&self) -> &'static str {
        "Scrollbar"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "set" => {
                if argv.len() != 6 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} set totalUnits windowUnits firstUnit lastUnit\""
                    )));
                }
                let nums: Result<Vec<i64>, _> =
                    argv[2..6].iter().map(|s| s.trim().parse::<i64>()).collect();
                let nums =
                    nums.map_err(|_| Exception::error("expected integer in scrollbar set"))?;
                self.view.set(View {
                    total: nums[0],
                    window: nums[1],
                    first: nums[2],
                    last: nums[3],
                });
                self.damage_trough(app, path);
                Ok(String::new())
            }
            "get" => {
                let v = self.view.get();
                Ok(format!("{} {} {} {}", v.total, v.window, v.first, v.last))
            }
            other => Err(bad_subcommand(path, other, "configure, get, or set")),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let width = self.config.get_pixels("-width").max(8) as u32;
        if self.vertical() {
            app.geometry_request(path, width, width * 6);
        } else {
            app.geometry_request(path, width * 6, width);
        }
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::ButtonPress {
                button: 1, x, y, ..
            } => {
                let p = if self.vertical() { *y } else { *x } as i64;
                self.hit(app, path, p, false);
            }
            Event::ButtonRelease { button: 1, .. } => {
                self.dragging.set(false);
            }
            Event::MotionNotify { state, x, y, .. }
                if state & xsim::event::state::BUTTON1 != 0 && self.dragging.get() =>
            {
                let p = if self.vertical() { *y } else { *x } as i64;
                self.hit(app, path, p, true);
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        draw_3d_rect(conn, cache, rec.xid, border, 0, 0, w, h, bw, Relief::Sunken);
        let fg_gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                ..Default::default()
            },
        );
        let arrow = self.arrow_len(app, path) as i32;
        // Arrow boxes (drawn as bevelled squares with a line glyph).
        if self.vertical() {
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                0,
                0,
                w,
                arrow as u32,
                1,
                Relief::Raised,
            );
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                0,
                h as i32 - arrow,
                w,
                arrow as u32,
                1,
                Relief::Raised,
            );
            conn.draw_line(rec.xid, fg_gc, w as i32 / 2, 3, w as i32 / 2, arrow - 3);
            conn.draw_line(
                rec.xid,
                fg_gc,
                w as i32 / 2,
                h as i32 - arrow + 3,
                w as i32 / 2,
                h as i32 - 3,
            );
            let (s0, s1) = self.slider_span(app, path);
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                1,
                s0 as i32,
                w - 2,
                (s1 - s0).max(1) as u32,
                2,
                Relief::Raised,
            );
        } else {
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                0,
                0,
                arrow as u32,
                h,
                1,
                Relief::Raised,
            );
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                w as i32 - arrow,
                0,
                arrow as u32,
                h,
                1,
                Relief::Raised,
            );
            let (s0, s1) = self.slider_span(app, path);
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                s0 as i32,
                1,
                (s1 - s0).max(1) as u32,
                h - 2,
                2,
                Relief::Raised,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn set_and_get() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("scrollbar .s").unwrap();
        app.eval(".s set 100 10 20 29").unwrap();
        assert_eq!(app.eval(".s get").unwrap(), "100 10 20 29");
    }

    #[test]
    fn section4_scrollbar_drives_listbox() {
        // "the command will be specified as '.list view' ... the scrollbar
        // adds an additional number to it, producing a command like
        // '.list view 40'".
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("scrollbar .scroll -command \".list view\"")
            .unwrap();
        app.eval("listbox .list -scroll \".scroll set\" -geometry 20x5")
            .unwrap();
        app.eval("pack append . .scroll {right filly} .list {left expand fill}")
            .unwrap();
        app.update();
        for i in 0..50 {
            app.eval(&format!(".list insert end item{i}")).unwrap();
        }
        app.update();
        // The listbox told the scrollbar about its view. The packer gave
        // the listbox the scrollbar's minimum height (6 * 15 = 90px), so
        // 6 lines are visible rather than the requested 5.
        assert_eq!(app.eval(".scroll get").unwrap(), "50 6 0 5");
        // Click the down arrow: the listbox scrolls by one unit.
        let rec = app.window(".scroll").unwrap();
        let d = env.display();
        d.move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 - 3,
        );
        d.click(1);
        env.dispatch_all();
        assert_eq!(app.eval(".scroll get").unwrap(), "50 6 1 6");
        // Page down: click in the trough below the slider.
        d.move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 * 3 / 4,
        );
        d.click(1);
        env.dispatch_all();
        assert_eq!(app.eval(".scroll get").unwrap(), "50 6 7 12");
    }

    #[test]
    fn arrow_up_at_top_clamps() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("proc view {i} {global got; set got $i}").unwrap();
        app.eval("scrollbar .s -command view").unwrap();
        app.eval("pack append . .s {left filly}").unwrap();
        app.update();
        app.eval(".s set 10 5 0 4").unwrap();
        let rec = app.window(".s").unwrap();
        env.display().move_pointer(rec.x.get() + 5, rec.y.get() + 3);
        env.display().click(1);
        env.dispatch_all();
        assert_eq!(app.eval("set got").unwrap(), "0");
    }

    #[test]
    fn one_scrollbar_can_drive_several_windows() {
        // Section 4: "a single scrollbar could be made to control several
        // windows" by giving it a Tcl procedure as its command.
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("listbox .l1 -geometry 10x3").unwrap();
        app.eval("listbox .l2 -geometry 10x3").unwrap();
        app.eval("proc both {i} {.l1 view $i; .l2 view $i}")
            .unwrap();
        app.eval("scrollbar .s -command both").unwrap();
        app.eval("pack append . .l1 {top} .l2 {top} .s {right filly}")
            .unwrap();
        app.update();
        for i in 0..10 {
            app.eval(&format!(".l1 insert end a{i}; .l2 insert end b{i}"))
                .unwrap();
        }
        app.update();
        app.eval(".s set 10 3 0 2").unwrap();
        // Click the down arrow.
        let rec = app.window(".s").unwrap();
        env.display().move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 - 2,
        );
        env.display().click(1);
        env.dispatch_all();
        assert_eq!(app.eval(".l1 nearest 1").unwrap(), "1");
        assert_eq!(app.eval(".l2 nearest 1").unwrap(), "1");
    }
}
