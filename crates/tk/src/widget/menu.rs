//! The menu and menubutton widgets.
//!
//! The second of the two widgets the paper left as future work. A menu is
//! a popup window of entries (commands, check/radio entries, separators);
//! a menubutton posts its associated menu when pressed. Entry actions are
//! ordinary Tcl commands, like every other widget action in Tk.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::{draw_3d_rect, Relief};
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static MENU_SPECS: &[OptSpec] = &[
    opt(
        "-activebackground",
        "activeBackground",
        "Foreground",
        "lightsteelblue",
        OptKind::Color,
    ),
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
];

static MENUBUTTON_SPECS: &[OptSpec] = &[
    opt(
        "-activebackground",
        "activeBackground",
        "Foreground",
        "white",
        OptKind::Color,
    ),
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-menu", "menu", "Menu", "", OptKind::Str),
    opt("-padx", "padX", "Pad", "3", OptKind::Pixels),
    opt("-pady", "padY", "Pad", "1", OptKind::Pixels),
    opt("-relief", "relief", "Relief", "raised", OptKind::Relief),
    opt("-text", "text", "Text", "", OptKind::Str),
];

/// The kinds of menu entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Command,
    CheckButton,
    RadioButton,
    Separator,
}

/// One menu entry.
struct MenuEntry {
    kind: EntryKind,
    label: String,
    command: String,
    variable: String,
    value: String,
}

/// The menu widget.
pub struct Menu {
    config: ConfigStore,
    entries: RefCell<Vec<MenuEntry>>,
    active: Cell<Option<usize>>,
    posted: Cell<bool>,
}

/// The menubutton widget.
pub struct Menubutton {
    config: ConfigStore,
}

/// Registers the `menu` and `menubutton` creation commands.
pub fn register(app: &TkApp) {
    app.register_command("menu", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Menu {
                config: ConfigStore::new(MENU_SPECS),
                entries: RefCell::new(Vec::new()),
                active: Cell::new(None),
                posted: Cell::new(false),
            }),
        )
    });
    app.register_command("menubutton", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Menubutton {
                config: ConfigStore::new(MENUBUTTON_SPECS),
            }),
        )
    });
}

impl Menu {
    /// Entry line height.
    fn line_height(&self, app: &TkApp) -> u32 {
        app.cache()
            .font(app.conn(), &self.config.get("-font"))
            .map(|(_, m)| m.line_height() + 4)
            .unwrap_or(17)
    }

    /// Recomputes the requested size from the entries.
    fn resize(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let entries = self.entries.borrow();
        let widest = entries
            .iter()
            .map(|e| m.text_width(&e.label))
            .max()
            .unwrap_or(20);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        let h = entries.len().max(1) as u32 * self.line_height(app) + 2 * bw;
        app.geometry_request(path, widest + 24 + 2 * bw, h);
        Ok(())
    }

    /// Parses an entry index (number, `last`, or `active`).
    fn entry_index(&self, spec: &str) -> Result<usize, Exception> {
        let n = self.entries.borrow().len();
        match spec {
            "last" | "end" => Ok(n.saturating_sub(1)),
            "active" => self
                .active
                .get()
                .ok_or_else(|| Exception::error("no active entry")),
            _ => spec
                .parse::<usize>()
                .map_err(|_| Exception::error(format!("bad menu entry index \"{spec}\""))),
        }
    }

    /// Runs an entry's action.
    fn invoke_entry(&self, app: &TkApp, index: usize) -> TclResult {
        let (kind, command, variable, value, label) = {
            let entries = self.entries.borrow();
            let e = entries
                .get(index)
                .ok_or_else(|| Exception::error(format!("bad menu entry index \"{index}\"")))?;
            (
                e.kind,
                e.command.clone(),
                e.variable.clone(),
                e.value.clone(),
                e.label.clone(),
            )
        };
        match kind {
            EntryKind::CheckButton if !variable.is_empty() => {
                let cur = app
                    .interp()
                    .get_var_at(0, &variable, None)
                    .unwrap_or_default();
                let next = if cur == "1" { "0" } else { "1" };
                app.interp().set_var_at(0, &variable, None, next)?;
            }
            EntryKind::RadioButton if !variable.is_empty() => {
                let v = if value.is_empty() { label } else { value };
                app.interp().set_var_at(0, &variable, None, &v)?;
            }
            EntryKind::Separator => return Ok(String::new()),
            _ => {}
        }
        if command.is_empty() {
            Ok(String::new())
        } else {
            app.interp().eval(&command)
        }
    }

    /// The entry index at pixel `y`.
    fn entry_at(&self, app: &TkApp, y: i32) -> Option<usize> {
        let lh = self.line_height(app) as i32;
        let bw = self.config.get_pixels("-borderwidth").max(0) as i32;
        if y < bw {
            return None;
        }
        let i = ((y - bw) / lh) as usize;
        if i < self.entries.borrow().len() {
            Some(i)
        } else {
            None
        }
    }
}

impl WidgetOps for Menu {
    fn class(&self) -> &'static str {
        "Menu"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "add" => {
                // .m add command -label L -command C (also checkbutton,
                // radiobutton, separator).
                let kind = match argv.get(2).map(String::as_str) {
                    Some("command") => EntryKind::Command,
                    Some("checkbutton") => EntryKind::CheckButton,
                    Some("radiobutton") => EntryKind::RadioButton,
                    Some("separator") => EntryKind::Separator,
                    other => {
                        return Err(Exception::error(format!(
                            "bad menu entry type \"{}\": must be command, \
                             checkbutton, radiobutton, or separator",
                            other.unwrap_or("")
                        )))
                    }
                };
                let mut entry = MenuEntry {
                    kind,
                    label: String::new(),
                    command: String::new(),
                    variable: String::new(),
                    value: String::new(),
                };
                let opts = &argv[3..];
                if opts.len() % 2 != 0 {
                    return Err(Exception::error("missing value for menu entry option"));
                }
                for pair in opts.chunks(2) {
                    match pair[0].as_str() {
                        "-label" => entry.label = pair[1].clone(),
                        "-command" => entry.command = pair[1].clone(),
                        "-variable" => entry.variable = pair[1].clone(),
                        "-value" => entry.value = pair[1].clone(),
                        other => {
                            return Err(Exception::error(format!(
                                "unknown menu entry option \"{other}\""
                            )))
                        }
                    }
                }
                self.entries.borrow_mut().push(entry);
                self.resize(app, path)?;
                app.schedule_redraw(path);
                Ok(String::new())
            }
            "delete" => {
                let i = self.entry_index(argv.get(2).ok_or_else(|| {
                    Exception::error(format!("wrong # args: should be \"{path} delete index\""))
                })?)?;
                let mut entries = self.entries.borrow_mut();
                if i < entries.len() {
                    entries.remove(i);
                }
                drop(entries);
                self.active.set(None);
                self.resize(app, path)?;
                app.schedule_redraw(path);
                Ok(String::new())
            }
            "size" => Ok(self.entries.borrow().len().to_string()),
            "post" => {
                if argv.len() != 4 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} post x y\""
                    )));
                }
                let x: i32 = argv[2]
                    .parse()
                    .map_err(|_| Exception::error("expected integer"))?;
                let y: i32 = argv[3]
                    .parse()
                    .map_err(|_| Exception::error("expected integer"))?;
                let rec = app.require_window(path)?;
                // The menu's X window is a child of the root, so post
                // coordinates are used directly.
                app.conn().configure_window(
                    rec.xid,
                    Some(x),
                    Some(y),
                    Some(rec.req_width.get()),
                    Some(rec.req_height.get()),
                    None,
                );
                app.conn().map_window(rec.xid);
                app.conn().raise_window(rec.xid);
                self.posted.set(true);
                app.schedule_redraw(path);
                Ok(String::new())
            }
            "unpost" => {
                let rec = app.require_window(path)?;
                app.conn().unmap_window(rec.xid);
                self.posted.set(false);
                self.active.set(None);
                Ok(String::new())
            }
            "activate" => {
                let i = self.entry_index(argv.get(2).ok_or_else(|| {
                    Exception::error(format!("wrong # args: should be \"{path} activate index\""))
                })?)?;
                self.active.set(Some(i));
                app.schedule_redraw(path);
                Ok(String::new())
            }
            "invoke" => {
                let i = self.entry_index(argv.get(2).ok_or_else(|| {
                    Exception::error(format!("wrong # args: should be \"{path} invoke index\""))
                })?)?;
                self.invoke_entry(app, i)
            }
            "entrylabel" => {
                // Introspection helper: the label of an entry.
                let i = self.entry_index(
                    argv.get(2)
                        .ok_or_else(|| Exception::error("wrong # args: entrylabel index"))?,
                )?;
                Ok(self
                    .entries
                    .borrow()
                    .get(i)
                    .map(|e| e.label.clone())
                    .unwrap_or_default())
            }
            other => Err(bad_subcommand(
                path,
                other,
                "activate, add, configure, delete, invoke, post, size, or unpost",
            )),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        // Menus hang off the root window in X (while keeping their logical
        // Tk parent) so that they can extend beyond the parent's bounds.
        app.conn()
            .reparent_window(rec.xid, app.conn().root(), rec.x.get(), rec.y.get());
        app.conn().set_override_redirect(rec.xid, true);
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        self.resize(app, path)?;
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::MotionNotify { y, .. } => {
                let hit = self.entry_at(app, *y);
                if hit != self.active.get() {
                    self.active.set(hit);
                    app.schedule_redraw(path);
                }
            }
            Event::ButtonRelease { button: 1, y, .. } => {
                if let Some(i) = self.entry_at(app, *y) {
                    let _ = app.eval(&format!("{path} unpost"));
                    if let Err(e) = self.invoke_entry(app, i) {
                        if e.code == tcl::Code::Error {
                            app.eval_background(&format!("error {}", tcl::format_list(&[e.msg])));
                        }
                    }
                }
            }
            Event::LeaveNotify { .. } => {
                self.active.set(None);
                app.schedule_redraw(path);
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok(active_bg) = cache.color(conn, &self.config.get("-activebackground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        let (w, h) = (rec.width.get(), rec.height.get());
        draw_3d_rect(conn, cache, rec.xid, border, 0, 0, w, h, bw, Relief::Raised);
        let lh = self.line_height(app);
        let text_gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let active_gc = cache.gc(
            conn,
            GcValues {
                foreground: active_bg,
                ..Default::default()
            },
        );
        for (i, e) in self.entries.borrow().iter().enumerate() {
            let y0 = bw as i32 + i as i32 * lh as i32;
            if self.active.get() == Some(i) && e.kind != EntryKind::Separator {
                conn.fill_rectangle(rec.xid, active_gc, bw as i32, y0, w - 2 * bw, lh);
            }
            match e.kind {
                EntryKind::Separator => {
                    conn.draw_line(
                        rec.xid,
                        text_gc,
                        bw as i32 + 2,
                        y0 + lh as i32 / 2,
                        w as i32 - bw as i32 - 2,
                        y0 + lh as i32 / 2,
                    );
                }
                _ => {
                    // Check/radio indicator state.
                    let mark = match e.kind {
                        EntryKind::CheckButton => {
                            let v = app
                                .interp()
                                .get_var_at(0, &e.variable, None)
                                .unwrap_or_default();
                            v == "1"
                        }
                        EntryKind::RadioButton => {
                            let v = app
                                .interp()
                                .get_var_at(0, &e.variable, None)
                                .unwrap_or_default();
                            !v.is_empty()
                                && v == if e.value.is_empty() {
                                    e.label.clone()
                                } else {
                                    e.value.clone()
                                }
                        }
                        _ => false,
                    };
                    if mark {
                        conn.fill_rectangle(rec.xid, text_gc, bw as i32 + 4, y0 + 5, 6, 6);
                    }
                    conn.draw_string(
                        rec.xid,
                        text_gc,
                        bw as i32 + 16,
                        y0 + 2 + m.ascent as i32,
                        &e.label,
                    );
                }
            }
        }
    }
}

impl WidgetOps for Menubutton {
    fn class(&self) -> &'static str {
        "Menubutton"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "post" => {
                self.post(app, path)?;
                Ok(String::new())
            }
            other => Err(bad_subcommand(path, other, "configure or post")),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let text = self.config.get("-text");
        let bw = self.config.get_pixels("-borderwidth").max(0);
        let padx = self.config.get_pixels("-padx").max(0);
        let pady = self.config.get_pixels("-pady").max(0);
        app.geometry_request(
            path,
            (m.text_width(&text) as i64 + 2 * (bw + padx) + 2).max(1) as u32,
            (m.line_height() as i64 + 2 * (bw + pady) + 2).max(1) as u32,
        );
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::ButtonPress { button: 1, .. } => {
                let _ = self.post(app, path);
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        draw_3d_rect(
            conn,
            cache,
            rec.xid,
            border,
            0,
            0,
            w,
            h,
            bw,
            self.config.get_relief("-relief"),
        );
        let gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let text = self.config.get("-text");
        conn.draw_string(
            rec.xid,
            gc,
            bw as i32 + self.config.get_pixels("-padx") as i32,
            (h as i32 + m.ascent as i32 - m.descent as i32) / 2,
            &text,
        );
    }
}

impl Menubutton {
    /// Posts the associated menu just below this button.
    fn post(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let menu = self.config.get("-menu");
        if menu.is_empty() {
            return Ok(());
        }
        let rec = app.require_window(path)?;
        // Root coordinates of this button's lower-left corner.
        let (mut x, mut y) = (0i64, rec.height.get() as i64);
        let mut cur = path.to_string();
        loop {
            let r = app.require_window(&cur)?;
            x += r.x.get() as i64;
            y += r.y.get() as i64;
            match crate::window::parent_path(&cur) {
                Some(p) => cur = p.to_string(),
                None => break,
            }
        }
        app.eval(&format!("{menu} post {x} {y}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn add_and_invoke_entries() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("menu .m").unwrap();
        app.eval(".m add command -label Open -command {set did open}")
            .unwrap();
        app.eval(".m add separator").unwrap();
        app.eval(".m add command -label Quit -command {set did quit}")
            .unwrap();
        assert_eq!(app.eval(".m size").unwrap(), "3");
        app.eval(".m invoke 0").unwrap();
        assert_eq!(app.eval("set did").unwrap(), "open");
        app.eval(".m invoke last").unwrap();
        assert_eq!(app.eval("set did").unwrap(), "quit");
    }

    #[test]
    fn check_and_radio_entries() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("menu .m").unwrap();
        app.eval(".m add checkbutton -label Bold -variable bold")
            .unwrap();
        app.eval(".m add radiobutton -label Red -variable color -value red")
            .unwrap();
        app.eval(".m invoke 0").unwrap();
        assert_eq!(app.eval("set bold").unwrap(), "1");
        app.eval(".m invoke 0").unwrap();
        assert_eq!(app.eval("set bold").unwrap(), "0");
        app.eval(".m invoke 1").unwrap();
        assert_eq!(app.eval("set color").unwrap(), "red");
    }

    #[test]
    fn post_maps_and_unpost_unmaps() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("menu .m").unwrap();
        app.eval(".m add command -label X -command {}").unwrap();
        app.eval(".m post 100 50").unwrap();
        app.update();
        assert!(app.window(".m").unwrap().mapped.get());
        app.eval(".m unpost").unwrap();
        app.update();
        assert!(!app.window(".m").unwrap().mapped.get());
    }

    #[test]
    fn menubutton_posts_menu_and_click_invokes() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("menubutton .mb -text File -menu .mb.m").unwrap();
        app.eval("menu .mb.m").unwrap();
        app.eval(".mb.m add command -label Save -command {set did save}")
            .unwrap();
        app.eval("pack append . .mb {top frame nw}").unwrap();
        app.update();
        let mb = app.window(".mb").unwrap();
        // Press the menubutton: the menu posts below it.
        env.display().move_pointer(
            mb.x.get() + mb.width.get() as i32 / 2,
            mb.y.get() + mb.height.get() as i32 / 2,
        );
        env.display().press_button(1);
        env.display().release_button(1);
        env.dispatch_all();
        app.update();
        let m = app.window(".mb.m").unwrap();
        assert!(m.mapped.get(), "menu should be posted");
        // Release over the first entry invokes it.
        env.display()
            .move_pointer(mb.x.get() + 10, mb.y.get() + mb.height.get() as i32 + 8);
        env.display().press_button(1);
        env.display().release_button(1);
        env.dispatch_all();
        assert_eq!(app.eval("set did").unwrap(), "save");
        app.update();
        assert!(!app.window(".mb.m").unwrap().mapped.get());
    }

    #[test]
    fn delete_entry() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("menu .m").unwrap();
        app.eval(".m add command -label A -command {}").unwrap();
        app.eval(".m add command -label B -command {}").unwrap();
        app.eval(".m delete 0").unwrap();
        assert_eq!(app.eval(".m size").unwrap(), "1");
        assert_eq!(app.eval(".m entrylabel 0").unwrap(), "B");
    }
}
