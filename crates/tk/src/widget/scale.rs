//! The scale widget: a slider that adjusts an integer value between
//! `-from` and `-to`, reporting changes through its `-command`.

use std::cell::Cell;
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::{draw_3d_rect, Relief};
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-command", "command", "Command", "", OptKind::Str),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-from", "from", "From", "0", OptKind::Int),
    opt("-label", "label", "Label", "", OptKind::Str),
    opt("-length", "length", "Length", "100", OptKind::Pixels),
    opt("-orient", "orient", "Orient", "horizontal", OptKind::Orient),
    opt(
        "-showvalue",
        "showValue",
        "ShowValue",
        "1",
        OptKind::Boolean,
    ),
    opt(
        "-sliderlength",
        "sliderLength",
        "SliderLength",
        "20",
        OptKind::Pixels,
    ),
    opt("-to", "to", "To", "100", OptKind::Int),
    opt("-width", "width", "Width", "15", OptKind::Pixels),
];

/// The scale widget.
pub struct Scale {
    config: ConfigStore,
    value: Cell<i64>,
    dragging: Cell<bool>,
}

/// Registers the `scale` creation command.
pub fn register(app: &TkApp) {
    app.register_command("scale", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Scale {
                config: ConfigStore::new(SPECS),
                value: Cell::new(0),
                dragging: Cell::new(false),
            }),
        )
    });
}

impl Scale {
    fn horizontal(&self) -> bool {
        self.config.get("-orient") != "vertical"
    }

    fn bounds(&self) -> (i64, i64) {
        (self.config.get_int("-from"), self.config.get_int("-to"))
    }

    /// Sets the value (clamped) and runs `-command value`.
    fn set_value(&self, app: &TkApp, path: &str, v: i64) {
        let (from, to) = self.bounds();
        let v = v.clamp(from.min(to), from.max(to));
        if self.value.replace(v) != v {
            app.schedule_redraw(path);
            let cmd = self.config.get("-command");
            if !cmd.is_empty() {
                app.eval_background(&format!("{cmd} {v}"));
            }
        }
    }

    /// Maps a pixel position along the long axis to a value.
    fn value_at(&self, app: &TkApp, path: &str, p: i64) -> i64 {
        let Some(rec) = app.window(path) else {
            return 0;
        };
        let (from, to) = self.bounds();
        let sl = self.config.get_pixels("-sliderlength").max(4);
        let len = if self.horizontal() {
            rec.width.get() as i64
        } else {
            rec.height.get() as i64
        };
        let track = (len - sl).max(1);
        let frac = ((p - sl / 2).clamp(0, track)) as f64 / track as f64;
        from + ((to - from) as f64 * frac).round() as i64
    }
}

impl WidgetOps for Scale {
    fn class(&self) -> &'static str {
        "Scale"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "get" => Ok(self.value.get().to_string()),
            "set" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} set value\""
                    )));
                }
                let v: i64 = argv[2].trim().parse().map_err(|_| {
                    Exception::error(format!("expected integer but got \"{}\"", argv[2]))
                })?;
                self.set_value(app, path, v);
                Ok(String::new())
            }
            other => Err(bad_subcommand(path, other, "configure, get, or set")),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let length = self.config.get_pixels("-length").max(20) as u32;
        let mut thickness = self.config.get_pixels("-width").max(8) as u32;
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        if self.config.get_bool("-showvalue") {
            thickness += m.line_height();
        }
        if !self.config.get("-label").is_empty() {
            thickness += m.line_height();
        }
        if self.horizontal() {
            app.geometry_request(path, length, thickness + 8);
        } else {
            app.geometry_request(path, thickness + 8, length);
        }
        // Clamp the current value into the (possibly new) range.
        let (from, to) = self.bounds();
        let v = self.value.get().clamp(from.min(to), from.max(to));
        self.value.set(v);
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::ButtonPress {
                button: 1, x, y, ..
            } => {
                self.dragging.set(true);
                let p = if self.horizontal() { *x } else { *y } as i64;
                let v = self.value_at(app, path, p);
                self.set_value(app, path, v);
            }
            Event::ButtonRelease { button: 1, .. } => self.dragging.set(false),
            Event::MotionNotify { state, x, y, .. }
                if state & xsim::event::state::BUTTON1 != 0 && self.dragging.get() =>
            {
                let p = if self.horizontal() { *x } else { *y } as i64;
                let v = self.value_at(app, path, p);
                self.set_value(app, path, v);
            }
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let text_gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let mut top = 2i32;
        let label = self.config.get("-label");
        if !label.is_empty() {
            conn.draw_string(rec.xid, text_gc, 4, top + m.ascent as i32, &label);
            top += m.line_height() as i32;
        }
        if self.config.get_bool("-showvalue") {
            // Value text above the slider at its position.
            let (from, to) = self.bounds();
            let sl = self.config.get_pixels("-sliderlength").max(4);
            let track = (w as i64 - sl).max(1);
            let frac = if to != from {
                (self.value.get() - from) as f64 / (to - from) as f64
            } else {
                0.0
            };
            let vx = (track as f64 * frac) as i32;
            conn.draw_string(
                rec.xid,
                text_gc,
                vx.max(2),
                top + m.ascent as i32,
                &self.value.get().to_string(),
            );
            top += m.line_height() as i32;
        }
        // Trough + slider.
        let trough_h = (h as i32 - top - 2).max(4) as u32;
        draw_3d_rect(
            conn,
            cache,
            rec.xid,
            border,
            0,
            top,
            w,
            trough_h,
            1,
            Relief::Sunken,
        );
        let sl = self.config.get_pixels("-sliderlength").max(4);
        let (from, to) = self.bounds();
        let frac = if to != from {
            (self.value.get() - from) as f64 / (to - from) as f64
        } else {
            0.0
        };
        if self.horizontal() {
            let track = (w as i64 - sl).max(1);
            let sx = (track as f64 * frac) as i32;
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                sx,
                top + 1,
                sl as u32,
                trough_h - 2,
                2,
                Relief::Raised,
            );
        } else {
            let track = (h as i64 - sl).max(1);
            let sy = (track as f64 * frac) as i32;
            draw_3d_rect(
                conn,
                cache,
                rec.xid,
                border,
                1,
                sy,
                w - 2,
                sl as u32,
                2,
                Relief::Raised,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn set_get_and_command() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("proc note {v} {global got; set got $v}").unwrap();
        app.eval("scale .s -from 0 -to 100 -command note").unwrap();
        app.eval(".s set 42").unwrap();
        assert_eq!(app.eval(".s get").unwrap(), "42");
        assert_eq!(app.eval("set got").unwrap(), "42");
    }

    #[test]
    fn value_clamps_to_range() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("scale .s -from 10 -to 20").unwrap();
        app.eval(".s set 99").unwrap();
        assert_eq!(app.eval(".s get").unwrap(), "20");
        app.eval(".s set 0").unwrap();
        assert_eq!(app.eval(".s get").unwrap(), "10");
    }

    #[test]
    fn click_sets_value_proportionally() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("scale .s -from 0 -to 100 -length 120 -sliderlength 20")
            .unwrap();
        app.eval("pack append . .s {top}").unwrap();
        app.update();
        let rec = app.window(".s").unwrap();
        // Click in the middle: value near 50.
        env.display().move_pointer(
            rec.x.get() + rec.width.get() as i32 / 2,
            rec.y.get() + rec.height.get() as i32 - 5,
        );
        env.display().click(1);
        env.dispatch_all();
        let v: i64 = app.eval(".s get").unwrap().parse().unwrap();
        assert!((40..=60).contains(&v), "value {v}");
    }

    #[test]
    fn command_not_rerun_for_same_value() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set count 0").unwrap();
        app.eval("proc note {v} {global count; incr count}")
            .unwrap();
        app.eval("scale .s -command note").unwrap();
        app.eval(".s set 5; .s set 5; .s set 5").unwrap();
        assert_eq!(app.eval("set count").unwrap(), "1");
    }
}
