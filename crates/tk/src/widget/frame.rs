//! The `frame` and `toplevel` widgets: plain containers with a background
//! and an optional 3-D border.

use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::Event;

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::draw_3d_rect;
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static FRAME_SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "0",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-cursor", "cursor", "Cursor", "", OptKind::Cursor),
    opt("-geometry", "geometry", "Geometry", "", OptKind::Str),
    opt("-relief", "relief", "Relief", "flat", OptKind::Relief),
];

/// A frame (or toplevel) widget.
pub struct Frame {
    class: &'static str,
    config: ConfigStore,
}

/// Registers the `frame` and `toplevel` creation commands.
pub fn register(app: &TkApp) {
    app.register_command("frame", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Frame {
                class: "Frame",
                config: ConfigStore::new(FRAME_SPECS),
            }),
        )
    });
    app.register_command("toplevel", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Frame {
                class: "Toplevel",
                config: ConfigStore::new(FRAME_SPECS),
            }),
        )
    });
}

impl WidgetOps for Frame {
    fn class(&self) -> &'static str {
        self.class
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        match argv.get(1).map(String::as_str) {
            Some(sub) => Err(bad_subcommand(path, sub, "configure")),
            None => Err(Exception::error(format!(
                "wrong # args: should be \"{path} option ?arg ...?\""
            ))),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        if self.class == "Toplevel" {
            // Toplevels are X children of the root regardless of their Tk
            // parent, and map immediately (there is no window manager to
            // negotiate with in the simulation).
            app.conn()
                .reparent_window(rec.xid, app.conn().root(), rec.x.get(), rec.y.get());
            app.conn().map_window(rec.xid);
        }
        let bg = self.config.get("-background");
        let pixel = app.cache().color(app.conn(), &bg)?;
        app.conn().set_window_background(rec.xid, pixel);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        rec.internal_border.set(bw);
        let cursor = self.config.get("-cursor");
        if !cursor.is_empty() {
            let c = app.cache().cursor(app.conn(), &cursor)?;
            app.conn().define_cursor(rec.xid, c);
        }
        // An explicit -geometry fixes the requested size; otherwise the
        // geometry managers of the children drive it.
        let geometry = self.config.get("-geometry");
        if !geometry.is_empty() {
            let (w, h) = crate::draw::parse_geometry(&geometry)?;
            app.geometry_request(path, w, h);
        }
        app.conn().clear_area(rec.xid, 0, 0, 0, 0);
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        if matches!(ev, Event::Expose { .. }) {
            app.expose_damage(path, ev);
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        let bw = rec.internal_border.get();
        if bw == 0 {
            return;
        }
        let Ok(border) = app
            .cache()
            .border(app.conn(), &self.config.get("-background"))
        else {
            return;
        };
        draw_3d_rect(
            app.conn(),
            app.cache(),
            rec.xid,
            border,
            0,
            0,
            rec.width.get(),
            rec.height.get(),
            bw,
            self.config.get_relief("-relief"),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    #[test]
    fn frame_creation_returns_path() {
        let env = TkEnv::new();
        let app = env.app("t");
        assert_eq!(app.eval("frame .f").unwrap(), ".f");
        let rec = app.window(".f").unwrap();
        assert_eq!(rec.class, "Frame");
    }

    #[test]
    fn frame_creation_with_options() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f -background red -borderwidth 2 -relief raised -geometry 120x80")
            .unwrap();
        app.update();
        let rec = app.window(".f").unwrap();
        assert_eq!(rec.internal_border.get(), 2);
        assert_eq!(rec.req_width.get(), 120);
        assert_eq!(rec.req_height.get(), 80);
    }

    #[test]
    fn bad_option_destroys_half_made_widget() {
        let env = TkEnv::new();
        let app = env.app("t");
        assert!(app.eval("frame .f -background nocolor").is_err());
        assert!(app.window(".f").is_none());
        // The name can be reused afterwards.
        app.eval("frame .f").unwrap();
    }

    #[test]
    fn widget_command_configure_queries() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f -bg blue").unwrap();
        let one = app.eval(".f configure -background").unwrap();
        assert!(one.contains("blue"), "{one}");
        let all = app.eval(".f configure").unwrap();
        assert!(all.contains("-borderwidth"));
        app.eval(".f configure -bg red").unwrap();
        assert!(app
            .eval(".f configure -background")
            .unwrap()
            .contains("red"));
    }

    #[test]
    fn toplevel_class() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("toplevel .top").unwrap();
        assert_eq!(app.window(".top").unwrap().class, "Toplevel");
        assert!(app.is_toplevel(".top"));
    }

    #[test]
    fn unknown_subcommand_reports_error() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("frame .f").unwrap();
        let e = app.eval(".f frobnicate").unwrap_err();
        assert!(e.msg.contains("bad option"));
    }
}
