//! The entry widget: a one-line editable text field.
//!
//! One of the two widgets the paper lists as still unimplemented ("two
//! major widget types, entries and menus, are still left to be
//! implemented") — delivered here. Printable keys insert at the cursor,
//! BackSpace/Delete erase, and clicking positions the cursor; all of that
//! also works from Tcl through the widget command, which is what makes the
//! paper's Section 5 `Control-w` example possible without C code.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues, Rect};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::draw_3d_rect;
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "white",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "2",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-cursor", "cursor", "Cursor", "xterm", OptKind::Cursor),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-relief", "relief", "Relief", "sunken", OptKind::Relief),
    opt(
        "-scroll",
        "scrollCommand",
        "ScrollCommand",
        "",
        OptKind::Str,
    ),
    synonym("-scrollcommand", "-scroll"),
    opt(
        "-selectbackground",
        "selectBackground",
        "Foreground",
        "lightsteelblue",
        OptKind::Color,
    ),
    opt(
        "-textvariable",
        "textVariable",
        "Variable",
        "",
        OptKind::Str,
    ),
    opt("-width", "width", "Width", "20", OptKind::Int),
];

/// The entry widget state.
pub struct Entry {
    config: ConfigStore,
    text: RefCell<String>,
    /// Insertion cursor, as a character index.
    icursor: Cell<usize>,
    /// First visible character.
    view: Cell<usize>,
    /// Selected character range, inclusive.
    selection: Cell<Option<(usize, usize)>>,
    /// The `(variable, trace id)` mirroring `-textvariable` both ways.
    var_trace: RefCell<Option<(String, u64)>>,
}

/// Registers the `entry` creation command.
pub fn register(app: &TkApp) {
    app.register_command("entry", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Entry {
                config: ConfigStore::new(SPECS),
                text: RefCell::new(String::new()),
                icursor: Cell::new(0),
                view: Cell::new(0),
                selection: Cell::new(None),
                var_trace: RefCell::new(None),
            }),
        )
    });
}

impl Entry {
    fn char_len(&self) -> usize {
        self.text.borrow().chars().count()
    }

    /// Parses an entry index: a number, `end`, `insert`, or `sel.first`.
    fn index(&self, spec: &str) -> Result<usize, Exception> {
        match spec {
            "end" => Ok(self.char_len()),
            "insert" => Ok(self.icursor.get()),
            _ => spec
                .parse::<usize>()
                .map(|i| i.min(self.char_len()))
                .map_err(|_| Exception::error(format!("bad entry index \"{spec}\""))),
        }
    }

    fn byte_of(&self, char_idx: usize) -> usize {
        let text = self.text.borrow();
        text.char_indices()
            .nth(char_idx)
            .map(|(b, _)| b)
            .unwrap_or(text.len())
    }

    fn insert_text(&self, app: &TkApp, path: &str, at: usize, what: &str) {
        let b = self.byte_of(at);
        let added = what.chars().count();
        self.text.borrow_mut().insert_str(b, what);
        if self.icursor.get() >= at {
            self.icursor.set(self.icursor.get() + added);
        }
        self.sync_variable(app);
        self.notify_scroll(app, path);
        if at + added == self.char_len() {
            // Appended at the end: no glyphs shift, so only the new
            // cells and the cursor bar change (typing stays ~2 cells).
            self.damage_char_range(app, path, at, self.char_len() + 1);
        } else {
            self.damage_tail(app, path, at);
        }
    }

    fn delete_range(&self, app: &TkApp, path: &str, first: usize, last: usize) {
        let (b0, b1) = (self.byte_of(first), self.byte_of(last));
        if b0 < b1 {
            let deleted_tail = last >= self.char_len();
            self.text.borrow_mut().drain(b0..b1);
            let cur = self.icursor.get();
            if cur > first {
                self.icursor
                    .set(first.max(cur.saturating_sub(last - first)));
            }
            self.sync_variable(app);
            self.notify_scroll(app, path);
            if deleted_tail {
                // Erased the tail: only the removed cells (and the bars
                // that sat on them) need clearing.
                self.damage_char_range(app, path, first, last + 1);
            } else {
                self.damage_tail(app, path, first);
            }
        }
    }

    /// Layout numbers damage rects need: `(x0, char_width, width, height)`.
    /// `None` before the window or font exists.
    fn text_geometry(&self, app: &TkApp, path: &str) -> Option<(i32, u32, u32, u32)> {
        let rec = app.window(path)?;
        let (_, m) = app
            .cache()
            .font(app.conn(), &self.config.get("-font"))
            .ok()?;
        let bw = self.config.get_pixels("-borderwidth").max(0) as i32;
        Some((bw + 2, m.char_width, rec.width.get(), rec.height.get()))
    }

    /// Damages from character `from` (absolute index) to the right edge:
    /// the minimal region an edit at `from` can change, since glyphs to
    /// its left keep their positions. Edits left of the view force a full
    /// repaint.
    fn damage_tail(&self, app: &TkApp, path: &str, from: usize) {
        let Some((x0, cw, w, h)) = self.text_geometry(app, path) else {
            return app.schedule_redraw(path);
        };
        let view = self.view.get();
        if from < view {
            return app.schedule_redraw(path);
        }
        let dx = x0 + ((from - view) as i32) * cw as i32;
        let dw = (w as i32 - dx).max(1) as u32;
        app.schedule_redraw_damage(path, Rect::new(dx, 0, dw, h));
    }

    /// Damages the character cells `[from, to)` (absolute indices),
    /// clamped to the view; a cell also covers the cursor bar drawn on
    /// its left edge, and the extra pixel covers a bar sitting on `to`.
    fn damage_char_range(&self, app: &TkApp, path: &str, from: usize, to: usize) {
        let Some((x0, cw, _, h)) = self.text_geometry(app, path) else {
            return app.schedule_redraw(path);
        };
        let view = self.view.get();
        let from = from.max(view);
        let to = to.max(from + 1);
        let dx = x0 + ((from - view) as i32) * cw as i32;
        let dw = (to - from) as u32 * cw + 1;
        app.schedule_redraw_damage(path, Rect::new(dx, 0, dw, h));
    }

    /// Damages the union of the old and new selection ranges.
    fn damage_selection_change(
        &self,
        app: &TkApp,
        path: &str,
        old: Option<(usize, usize)>,
        new: Option<(usize, usize)>,
    ) {
        let spans: Vec<(usize, usize)> = old.into_iter().chain(new).collect();
        let Some(lo) = spans.iter().map(|s| s.0).min() else {
            return app.schedule_redraw(path);
        };
        let hi = spans.iter().map(|s| s.1).max().unwrap();
        self.damage_char_range(app, path, lo, hi + 1);
    }

    /// Mirrors the text into `-textvariable`, if configured.
    fn sync_variable(&self, app: &TkApp) {
        let var = self.config.get("-textvariable");
        if !var.is_empty() {
            let _ = app.interp().set_var_at(0, &var, None, &self.text.borrow());
        }
    }

    /// Characters that fit in the window.
    fn visible_chars(&self, app: &TkApp, path: &str) -> usize {
        let Some(rec) = app.window(path) else {
            return 1;
        };
        let Ok((_, m)) = app.cache().font(app.conn(), &self.config.get("-font")) else {
            return 1;
        };
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        (rec.width.get().saturating_sub(2 * (bw + 2)) / m.char_width).max(1) as usize
    }

    /// The currently selected text.
    fn selected_text(&self) -> String {
        let Some((a, b)) = self.selection.get() else {
            return String::new();
        };
        let text = self.text.borrow();
        text.chars().skip(a).take(b.saturating_sub(a) + 1).collect()
    }

    /// Claims the X selection for this entry (Section 3.6), with a handler
    /// returning the selected characters.
    fn claim_selection(&self, app: &TkApp, path: &str) {
        let fetch_path = path.to_string();
        let lost_path = path.to_string();
        crate::selection::claim(
            app,
            path,
            Some(crate::selection::NativeHandler {
                fetch: Rc::new(move |app: &TkApp| {
                    let Some(rec) = app.window(&fetch_path) else {
                        return String::new();
                    };
                    let widget = rec.widget.borrow().clone();
                    widget
                        .and_then(|w| {
                            w.command(app, &fetch_path, &[fetch_path.clone(), "_selected".into()])
                                .ok()
                        })
                        .unwrap_or_default()
                }),
                lost: Rc::new(move |app: &TkApp| {
                    if let Some(rec) = app.window(&lost_path) {
                        let widget = rec.widget.borrow().clone();
                        if let Some(w) = widget {
                            let _ = w.command(
                                app,
                                &lost_path,
                                &[lost_path.clone(), "select".into(), "clear".into()],
                            );
                        }
                    }
                }),
            }),
        );
    }

    /// Reports the view to the `-scroll` command (`total window first
    /// last`, in characters), like the listbox does in lines.
    fn notify_scroll(&self, app: &TkApp, path: &str) {
        let cmd = self.config.get("-scroll");
        if cmd.is_empty() {
            return;
        }
        let total = self.char_len();
        let window = self.visible_chars(app, path);
        let first = self.view.get();
        let last = (first + window).min(total).saturating_sub(1);
        app.eval_background(&format!("{cmd} {total} {window} {first} {last}"));
    }
}

impl WidgetOps for Entry {
    fn class(&self) -> &'static str {
        "Entry"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "get" => Ok(self.text.borrow().clone()),
            "_selected" => Ok(self.selected_text()),
            "insert" => {
                if argv.len() != 4 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} insert index text\""
                    )));
                }
                let at = self.index(&argv[2])?;
                self.insert_text(app, path, at, &argv[3]);
                Ok(String::new())
            }
            "delete" => {
                if argv.len() != 3 && argv.len() != 4 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} delete first ?last?\""
                    )));
                }
                let first = self.index(&argv[2])?;
                let last = if argv.len() == 4 {
                    self.index(&argv[3])?
                } else {
                    first + 1
                };
                self.delete_range(app, path, first, last.min(self.char_len()));
                Ok(String::new())
            }
            "icursor" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} icursor index\""
                    )));
                }
                let old = self.icursor.get();
                self.icursor.set(self.index(&argv[2])?);
                let new = self.icursor.get();
                self.damage_char_range(app, path, old.min(new), old.max(new) + 1);
                Ok(String::new())
            }
            "index" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} index index\""
                    )));
                }
                Ok(self.index(&argv[2])?.to_string())
            }
            "view" => {
                if argv.len() != 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} view index\""
                    )));
                }
                self.view.set(self.index(&argv[2])?);
                self.notify_scroll(app, path);
                app.schedule_redraw(path);
                Ok(String::new())
            }
            "select" => {
                // select from i | select to i | select clear — and the
                // selected range becomes the X selection (Section 3.6).
                match argv.get(2).map(String::as_str) {
                    Some("from") => {
                        let i = self.index(argv.get(3).ok_or_else(|| {
                            Exception::error("wrong # args: select from index")
                        })?)?;
                        let old = self.selection.get();
                        self.selection.set(Some((i, i)));
                        self.claim_selection(app, path);
                        self.damage_selection_change(app, path, old, Some((i, i)));
                        Ok(String::new())
                    }
                    Some("to") => {
                        let i = self
                            .index(argv.get(3).ok_or_else(|| {
                                Exception::error("wrong # args: select to index")
                            })?)?;
                        let old = self.selection.get();
                        let anchor = old.map(|(a, _)| a).unwrap_or(i);
                        let new = (anchor.min(i), anchor.max(i));
                        self.selection.set(Some(new));
                        self.claim_selection(app, path);
                        self.damage_selection_change(app, path, old, Some(new));
                        Ok(String::new())
                    }
                    Some("clear") => {
                        let old = self.selection.get();
                        self.selection.set(None);
                        self.damage_selection_change(app, path, old, None);
                        Ok(String::new())
                    }
                    _ => Err(Exception::error(
                        "bad select option: should be from, to, or clear",
                    )),
                }
            }
            other => Err(bad_subcommand(
                path,
                other,
                "configure, delete, get, icursor, index, insert, select, or view",
            )),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let chars = self.config.get_int("-width").max(1);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        app.geometry_request(
            path,
            chars as u32 * m.char_width + 2 * (bw + 2),
            m.line_height() + 2 * (bw + 2),
        );
        // Adopt the variable's current value, if one is set.
        let var = self.config.get("-textvariable");
        if !var.is_empty() {
            if let Ok(v) = app.interp().get_var_at(0, &var, None) {
                *self.text.borrow_mut() = v;
                let len = self.char_len();
                if self.icursor.get() > len {
                    self.icursor.set(len);
                }
            } else {
                self.sync_variable(app);
            }
        }
        // Mirror external variable writes back into the entry with a
        // write trace (how real Tk keeps -textvariable two-way).
        {
            let mut slot = self.var_trace.borrow_mut();
            let changed = slot.as_ref().map(|(v, _)| v != &var).unwrap_or(true);
            if changed {
                if let Some((old, id)) = slot.take() {
                    app.interp().trace_remove(&old, id);
                }
                if !var.is_empty() {
                    let weak = std::rc::Rc::downgrade(&app.inner);
                    let path_owned = path.to_string();
                    let var_name = var.clone();
                    let id = app.interp().trace_variable(
                        &var,
                        tcl::TraceOps {
                            write: true,
                            ..Default::default()
                        },
                        tcl::TraceAction::Native(Rc::new(move |_i, _n1, _n2, _op| {
                            let Some(inner) = weak.upgrade() else { return };
                            let app = crate::app::TkApp { inner };
                            let Some(rec) = app.window(&path_owned) else {
                                return;
                            };
                            let widget = rec.widget.borrow().clone();
                            let Some(widget) = widget else { return };
                            let value = app
                                .interp()
                                .get_var_at(0, &var_name, None)
                                .unwrap_or_default();
                            let current = widget
                                .command(&app, &path_owned, &[path_owned.clone(), "get".into()])
                                .unwrap_or_default();
                            if current != value {
                                let _ = widget.command(
                                    &app,
                                    &path_owned,
                                    &[
                                        path_owned.clone(),
                                        "delete".into(),
                                        "0".into(),
                                        "end".into(),
                                    ],
                                );
                                let _ = widget.command(
                                    &app,
                                    &path_owned,
                                    &[path_owned.clone(), "insert".into(), "0".into(), value],
                                );
                            }
                        })),
                    );
                    *slot = Some((var, id));
                }
            }
        }
        app.schedule_redraw(path);
        Ok(())
    }

    fn destroyed(&self, app: &TkApp, _path: &str) {
        if let Some((var, id)) = self.var_trace.borrow_mut().take() {
            app.interp().trace_remove(&var, id);
        }
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        match ev {
            Event::Expose { .. } => app.expose_damage(path, ev),
            Event::ButtonPress { button: 1, x, .. } => {
                // Click positions the insertion cursor and takes the focus.
                let old = self.icursor.get();
                if let Ok((_, m)) = app.cache().font(app.conn(), &self.config.get("-font")) {
                    let bw = self.config.get_pixels("-borderwidth").max(0);
                    let char_i = ((*x as i64 - bw - 2).max(0) / m.char_width as i64) as usize
                        + self.view.get();
                    self.icursor.set(char_i.min(self.char_len()));
                }
                if let Some(rec) = app.window(path) {
                    app.conn().set_input_focus(rec.xid);
                }
                let new = self.icursor.get();
                self.damage_char_range(app, path, old.min(new), old.max(new) + 1);
            }
            Event::KeyPress { keysym, state, .. } => match keysym.name.as_str() {
                "BackSpace" | "Delete" => {
                    let cur = self.icursor.get();
                    if cur > 0 {
                        self.delete_range(app, path, cur - 1, cur);
                    }
                }
                "Return" | "Tab" | "Escape" => {}
                _ => {
                    // Control/Meta chords are left to user bindings (the
                    // Section 5 Control-w example relies on this).
                    let chord =
                        state & (xsim::event::state::CONTROL | xsim::event::state::MOD1) != 0;
                    if let Some(ch) = keysym.ch {
                        if !ch.is_control() && !chord {
                            self.insert_text(app, path, self.icursor.get(), &ch.to_string());
                        }
                    }
                }
            },
            _ => {}
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(border) = cache.border(conn, &self.config.get("-background")) else {
            return;
        };
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        let (w, h) = (rec.width.get(), rec.height.get());
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        draw_3d_rect(
            conn,
            cache,
            rec.xid,
            border,
            0,
            0,
            w,
            h,
            bw,
            self.config.get_relief("-relief"),
        );
        let text_gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let text = self.text.borrow();
        let visible: String = text.chars().skip(self.view.get()).collect();
        let x0 = bw as i32 + 2;
        let baseline = (h as i32 + m.ascent as i32 - m.descent as i32) / 2;
        // Selection highlight behind the selected characters.
        if let Some((a, b)) = self.selection.get() {
            if let Ok(selbg) = cache.color(conn, &self.config.get("-selectbackground")) {
                let view = self.view.get();
                let first = a.max(view).saturating_sub(view);
                let last = (b + 1).saturating_sub(view);
                if last > first {
                    let sel_gc = cache.gc(
                        conn,
                        GcValues {
                            foreground: selbg,
                            ..Default::default()
                        },
                    );
                    conn.fill_rectangle(
                        rec.xid,
                        sel_gc,
                        x0 + first as i32 * m.char_width as i32,
                        baseline - m.ascent as i32,
                        (last - first) as u32 * m.char_width,
                        m.line_height(),
                    );
                }
            }
        }
        conn.draw_string(rec.xid, text_gc, x0, baseline, &visible);
        // The insertion cursor: a vertical bar.
        let cur = self.icursor.get().saturating_sub(self.view.get());
        let cx = x0 + (cur as i32) * m.char_width as i32;
        conn.draw_line(
            rec.xid,
            text_gc,
            cx,
            baseline - m.ascent as i32,
            cx,
            baseline + m.descent as i32,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    fn setup() -> (TkEnv, crate::app::TkApp) {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("entry .e -width 10").unwrap();
        app.eval("pack append . .e {top}").unwrap();
        app.update();
        (env, app)
    }

    #[test]
    fn insert_delete_get() {
        let (_env, app) = setup();
        app.eval(".e insert 0 hello").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "hello");
        app.eval(".e insert end !").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "hello!");
        app.eval(".e insert 5 ,").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "hello,!");
        app.eval(".e delete 5").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "hello!");
        app.eval(".e delete 0 end").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "");
    }

    #[test]
    fn icursor_and_index() {
        let (_env, app) = setup();
        app.eval(".e insert 0 abcdef").unwrap();
        app.eval(".e icursor 3").unwrap();
        assert_eq!(app.eval(".e index insert").unwrap(), "3");
        assert_eq!(app.eval(".e index end").unwrap(), "6");
    }

    #[test]
    fn typing_inserts_at_cursor() {
        let (env, app) = setup();
        let rec = app.window(".e").unwrap();
        env.display()
            .move_pointer(rec.x.get() + 5, rec.y.get() + rec.height.get() as i32 / 2);
        env.display().click(1); // focus + cursor at 0
        env.dispatch_all();
        env.display().type_string("hi there");
        env.dispatch_all();
        assert_eq!(app.eval(".e get").unwrap(), "hi there");
        env.display().press_key("BackSpace");
        env.dispatch_all();
        assert_eq!(app.eval(".e get").unwrap(), "hi ther");
    }

    #[test]
    fn click_positions_cursor() {
        let (env, app) = setup();
        app.eval(".e insert 0 abcdef").unwrap();
        app.update();
        let rec = app.window(".e").unwrap();
        // Click between c and d: borderwidth 2 + 2 + 3 chars * 6px = ~22.
        env.display().move_pointer(
            rec.x.get() + 4 + 3 * 6,
            rec.y.get() + rec.height.get() as i32 / 2,
        );
        env.display().click(1);
        env.dispatch_all();
        assert_eq!(app.eval(".e index insert").unwrap(), "3");
        env.display().type_char('X');
        env.dispatch_all();
        assert_eq!(app.eval(".e get").unwrap(), "abcXdef");
    }

    #[test]
    fn textvariable_mirrors() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set v seed").unwrap();
        app.eval("entry .e -textvariable v").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "seed");
        app.eval(".e insert end ling").unwrap();
        assert_eq!(app.eval("set v").unwrap(), "seedling");
    }

    #[test]
    fn section5_control_w_binding() {
        // "backspace over a whole word when Control-w is typed in an entry
        // widget ... the application itself would not have to be modified
        // in any way" — pure Tcl, via bind and the entry widget commands.
        let (env, app) = setup();
        app.eval(
            r#"bind .e <Control-w> {
                set s [.e get]
                set i [.e index insert]
                set j $i
                while {$j > 0 && [string index $s [expr $j-1]] == " "} {set j [expr $j-1]}
                while {$j > 0 && [string index $s [expr $j-1]] != " "} {set j [expr $j-1]}
                .e delete $j $i
                .e icursor $j
            }"#,
        )
        .unwrap();
        app.eval(".e insert 0 {hello brave world}").unwrap();
        app.eval(".e icursor end").unwrap();
        app.update();
        let rec = app.window(".e").unwrap();
        env.display().move_pointer(rec.x.get() + 2, rec.y.get() + 2);
        env.dispatch_all();
        app.eval("focus .e").unwrap();
        env.display().set_modifiers(xsim::event::state::CONTROL);
        env.display().type_char('w');
        env.display().set_modifiers(0);
        env.dispatch_all();
        assert_eq!(app.eval(".e get").unwrap(), "hello brave ");
    }
}

#[cfg(test)]
mod trace_tests {
    use crate::app::TkEnv;

    #[test]
    fn external_variable_write_updates_entry() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set v initial").unwrap();
        app.eval("entry .e -textvariable v").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "initial");
        // A plain Tcl write propagates into the widget.
        app.eval("set v changed").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "changed");
        // And widget edits still propagate out without loops.
        app.eval(".e insert end !").unwrap();
        assert_eq!(app.eval("set v").unwrap(), "changed!");
    }

    #[test]
    fn destroying_entry_removes_its_trace() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("entry .e -textvariable v").unwrap();
        app.eval("destroy .e").unwrap();
        // Writing the variable afterwards must not error or resurrect.
        app.eval("set v 12").unwrap();
        assert_eq!(app.eval("trace vinfo v").unwrap(), "");
    }

    #[test]
    fn retargeting_textvariable_swaps_traces() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("set a one; set b two").unwrap();
        app.eval("entry .e -textvariable a").unwrap();
        app.eval(".e configure -textvariable b").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "two");
        app.eval("set a uninteresting").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "two");
        app.eval("set b updated").unwrap();
        assert_eq!(app.eval(".e get").unwrap(), "updated");
        assert_eq!(app.eval("trace vinfo a").unwrap(), "");
    }
}

#[cfg(test)]
mod selection_tests {
    use crate::app::TkEnv;

    #[test]
    fn selected_range_becomes_x_selection() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("entry .e -width 20; pack append . .e {top}")
            .unwrap();
        app.update();
        app.eval(".e insert 0 {hello brave world}").unwrap();
        app.eval(".e select from 6").unwrap();
        app.eval(".e select to 10").unwrap();
        assert_eq!(app.eval("selection get").unwrap(), "brave");
        app.eval(".e select clear").unwrap();
        // The X selection is still owned by the entry but now empty
        // (clearing the range does not disown the selection, as in Tk).
        assert_eq!(app.eval("selection get").unwrap(), "");
    }

    #[test]
    fn another_owner_clears_entry_selection() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("entry .e; listbox .l -geometry 5x3").unwrap();
        app.eval("pack append . .e {top} .l {top}").unwrap();
        app.update();
        app.eval(".e insert 0 abcdef; .e select from 0; .e select to 2")
            .unwrap();
        assert_eq!(app.eval("selection get").unwrap(), "abc");
        app.eval(".l insert end item; .l select from 0").unwrap();
        env.dispatch_all();
        // The listbox now owns the selection; the entry's is cleared.
        assert_eq!(app.eval("selection get").unwrap(), "item");
    }
}
