//! The message widget: a multi-line read-only text block that wraps its
//! `-text` to honor an aspect ratio or a fixed width.

use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt("-aspect", "aspect", "Aspect", "150", OptKind::Int),
    opt(
        "-background",
        "background",
        "Background",
        "gray",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "0",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-font", "font", "Font", "fixed", OptKind::Font),
    opt(
        "-foreground",
        "foreground",
        "Foreground",
        "black",
        OptKind::Color,
    ),
    synonym("-fg", "-foreground"),
    opt("-justify", "justify", "Justify", "left", OptKind::Str),
    opt("-padx", "padX", "Pad", "2", OptKind::Pixels),
    opt("-pady", "padY", "Pad", "2", OptKind::Pixels),
    opt("-text", "text", "Text", "", OptKind::Str),
    opt("-width", "width", "Width", "0", OptKind::Pixels),
];

/// The message widget.
pub struct Message {
    config: ConfigStore,
}

/// Registers the `message` creation command.
pub fn register(app: &TkApp) {
    app.register_command("message", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Message {
                config: ConfigStore::new(SPECS),
            }),
        )
    });
}

/// Word-wraps `text` to at most `max_chars` per line (existing newlines
/// are respected; long words overflow on their own line).
pub fn wrap_text(text: &str, max_chars: usize) -> Vec<String> {
    let max_chars = max_chars.max(1);
    let mut lines = Vec::new();
    for para in text.split('\n') {
        let mut line = String::new();
        for word in para.split_whitespace() {
            if line.is_empty() {
                line = word.to_string();
            } else if line.chars().count() + 1 + word.chars().count() <= max_chars {
                line.push(' ');
                line.push_str(word);
            } else {
                lines.push(std::mem::take(&mut line));
                line = word.to_string();
            }
        }
        lines.push(line);
    }
    lines
}

impl Message {
    /// Chooses the wrap width (chars): explicit `-width` wins; otherwise
    /// the smallest width whose rendered aspect (100*w/h) exceeds
    /// `-aspect`, as in Tk.
    fn layout(&self, app: &TkApp) -> (Vec<String>, usize) {
        let Ok((_, m)) = app.cache().font(app.conn(), &self.config.get("-font")) else {
            return (Vec::new(), 1);
        };
        let text = self.config.get("-text");
        let width_px = self.config.get_pixels("-width");
        if width_px > 0 {
            let chars = (width_px as u32 / m.char_width).max(1) as usize;
            return (wrap_text(&text, chars), chars);
        }
        let aspect = self.config.get_int("-aspect").max(1);
        let total = text.chars().count().max(1);
        let mut chars = 10usize;
        loop {
            let lines = wrap_text(&text, chars);
            let w = m.char_width as i64 * chars as i64;
            let h = m.line_height() as i64 * lines.len().max(1) as i64;
            if 100 * w / h >= aspect || chars > total {
                return (lines, chars);
            }
            chars += 5;
        }
    }
}

impl WidgetOps for Message {
    fn class(&self) -> &'static str {
        "Message"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        match argv.get(1) {
            Some(sub) => Err(bad_subcommand(path, sub, "configure")),
            None => Err(Exception::error(format!(
                "wrong # args: should be \"{path} option ?arg ...?\""
            ))),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let (_, m) = app.cache().font(app.conn(), &self.config.get("-font"))?;
        let (lines, chars) = self.layout(app);
        let padx = self.config.get_pixels("-padx").max(0);
        let pady = self.config.get_pixels("-pady").max(0);
        let w = m.char_width as i64 * chars as i64 + 2 * padx;
        let h = m.line_height() as i64 * lines.len().max(1) as i64 + 2 * pady;
        app.geometry_request(path, w.max(1) as u32, h.max(1) as u32);
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        if matches!(ev, Event::Expose { .. }) {
            app.expose_damage(path, ev);
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        let Ok(fg) = cache.color(conn, &self.config.get("-foreground")) else {
            return;
        };
        let Ok((font, m)) = cache.font(conn, &self.config.get("-font")) else {
            return;
        };
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let gc = cache.gc(
            conn,
            GcValues {
                foreground: fg,
                font,
                ..Default::default()
            },
        );
        let padx = self.config.get_pixels("-padx").max(0) as i32;
        let pady = self.config.get_pixels("-pady").max(0) as i32;
        let (lines, _) = self.layout(app);
        for (n, line) in lines.iter().enumerate() {
            conn.draw_string(
                rec.xid,
                gc,
                padx,
                pady + n as i32 * m.line_height() as i32 + m.ascent as i32,
                line,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::wrap_text;
    use crate::app::TkEnv;

    #[test]
    fn wrap_respects_width_and_newlines() {
        assert_eq!(wrap_text("a b c d", 3), vec!["a b", "c d"]);
        assert_eq!(wrap_text("ab\ncd", 10), vec!["ab", "cd"]);
        assert_eq!(wrap_text("longword", 3), vec!["longword"]);
        assert_eq!(wrap_text("", 5), vec![""]);
    }

    #[test]
    fn message_wraps_to_fixed_width() {
        let env = TkEnv::new();
        let app = env.app("t");
        // fixed font: 6px chars; width 60px = 10 chars.
        app.eval("message .m -width 60 -text {one two three four five}")
            .unwrap();
        let rec = app.window(".m").unwrap();
        // 3 lines of 13px + pady: "one two", "three four", "five".
        assert!(rec.req_height.get() >= 3 * 13, "{}", rec.req_height.get());
    }

    #[test]
    fn message_aspect_grows_width() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("message .m -aspect 400 -text {a b c d e f g h i j k l m n o p}")
            .unwrap();
        let rec = app.window(".m").unwrap();
        let (w, h) = (rec.req_width.get() as i64, rec.req_height.get() as i64);
        assert!(100 * w / h >= 300, "aspect {}", 100 * w / h);
    }

    #[test]
    fn message_rejects_subcommands() {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("message .m -text hi").unwrap();
        assert!(app.eval(".m invoke").is_err());
    }
}
