//! The canvas widget: structured drawing commands for shapes and text.
//!
//! Section 5 of the paper: "I plan to enhance wish with drawing commands
//! for shapes and text and a few other features; once this is done it will
//! be possible to code a large class of interesting applications entirely
//! in Tcl." This widget delivers that future work: display items (lines,
//! rectangles, ovals, text) are created, moved, reconfigured, and deleted
//! from Tcl, addressed by id or tag.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::{Event, GcValues, Rect};

use crate::app::TkApp;
use crate::config::{opt, synonym, ConfigStore, OptKind, OptSpec};
use crate::draw::draw_3d_rect;
use crate::widget::{bad_subcommand, create_widget, handle_configure, WidgetOps};

static SPECS: &[OptSpec] = &[
    opt(
        "-background",
        "background",
        "Background",
        "white",
        OptKind::Color,
    ),
    synonym("-bg", "-background"),
    opt(
        "-borderwidth",
        "borderWidth",
        "BorderWidth",
        "0",
        OptKind::Pixels,
    ),
    synonym("-bd", "-borderwidth"),
    opt("-cursor", "cursor", "Cursor", "crosshair", OptKind::Cursor),
    opt(
        "-geometry",
        "geometry",
        "Geometry",
        "200x150",
        OptKind::Geometry,
    ),
    opt("-relief", "relief", "Relief", "flat", OptKind::Relief),
];

/// The shape of one display item.
#[derive(Debug, Clone)]
enum Shape {
    /// A polyline through the points.
    Line { points: Vec<(i32, i32)>, width: u32 },
    /// A rectangle from corner to corner.
    Rectangle {
        x1: i32,
        y1: i32,
        x2: i32,
        y2: i32,
        filled: bool,
    },
    /// An ellipse inscribed in the rectangle.
    Oval {
        x1: i32,
        y1: i32,
        x2: i32,
        y2: i32,
        filled: bool,
    },
    /// A text string with its anchor point.
    Text { x: i32, y: i32, text: String },
}

/// One display item: shape + paint + tag.
#[derive(Debug, Clone)]
struct Item {
    id: u64,
    shape: Shape,
    color: String,
    font: String,
    tag: String,
}

/// The canvas widget.
pub struct Canvas {
    config: ConfigStore,
    items: RefCell<Vec<Item>>,
    next_id: Cell<u64>,
}

/// Registers the `canvas` creation command.
pub fn register(app: &TkApp) {
    app.register_command("canvas", |app, _i, argv| {
        create_widget(
            app,
            argv,
            Rc::new(Canvas {
                config: ConfigStore::new(SPECS),
                items: RefCell::new(Vec::new()),
                next_id: Cell::new(0),
            }),
        )
    });
}

/// Parses leading integer coordinates; returns them and the remaining args.
fn take_coords(args: &[String]) -> (Vec<i32>, &[String]) {
    let mut coords = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].parse::<i32>() {
            Ok(v) => coords.push(v),
            Err(_) => break,
        }
        i += 1;
    }
    (coords, &args[i..])
}

/// Parses `-option value` pairs for item creation/configuration.
struct ItemOpts {
    color: Option<String>,
    font: Option<String>,
    tag: Option<String>,
    width: Option<u32>,
    text: Option<String>,
    filled: Option<bool>,
}

fn parse_item_opts(args: &[String]) -> Result<ItemOpts, Exception> {
    let mut o = ItemOpts {
        color: None,
        font: None,
        tag: None,
        width: None,
        text: None,
        filled: None,
    };
    if args.len() % 2 != 0 {
        return Err(Exception::error(format!(
            "value for \"{}\" missing",
            args.last().map(String::as_str).unwrap_or("")
        )));
    }
    for pair in args.chunks(2) {
        match pair[0].as_str() {
            "-fill" => {
                o.color = Some(pair[1].clone());
                o.filled = Some(true);
            }
            "-outline" => {
                o.color = Some(pair[1].clone());
                o.filled = Some(false);
            }
            "-font" => o.font = Some(pair[1].clone()),
            "-tag" | "-tags" => o.tag = Some(pair[1].clone()),
            "-width" => {
                o.width = Some(
                    pair[1]
                        .parse()
                        .map_err(|_| Exception::error(format!("bad width \"{}\"", pair[1])))?,
                )
            }
            "-text" => o.text = Some(pair[1].clone()),
            other => return Err(Exception::error(format!("unknown item option \"{other}\""))),
        }
    }
    Ok(o)
}

impl Canvas {
    /// Indices of items matching an id, a tag, or `all`.
    fn matching(&self, spec: &str) -> Vec<usize> {
        let items = self.items.borrow();
        if spec == "all" {
            return (0..items.len()).collect();
        }
        if let Ok(id) = spec.parse::<u64>() {
            return items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.id == id)
                .map(|(i, _)| i)
                .collect();
        }
        items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.tag == spec)
            .map(|(i, _)| i)
            .collect()
    }

    fn create_item(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        let kind = argv
            .get(2)
            .ok_or_else(|| Exception::error("wrong # args: create type coords ?options?"))?
            .as_str();
        let (coords, rest) = take_coords(&argv[3..]);
        let opts = parse_item_opts(rest)?;
        let shape = match kind {
            "line" => {
                if coords.len() < 4 || coords.len() % 2 != 0 {
                    return Err(Exception::error(
                        "line items need an even number of >= 4 coordinates",
                    ));
                }
                Shape::Line {
                    points: coords.chunks(2).map(|c| (c[0], c[1])).collect(),
                    width: opts.width.unwrap_or(1),
                }
            }
            "rectangle" => {
                if coords.len() != 4 {
                    return Err(Exception::error("rectangle items need 4 coordinates"));
                }
                Shape::Rectangle {
                    x1: coords[0].min(coords[2]),
                    y1: coords[1].min(coords[3]),
                    x2: coords[0].max(coords[2]),
                    y2: coords[1].max(coords[3]),
                    filled: opts.filled.unwrap_or(false),
                }
            }
            "oval" => {
                if coords.len() != 4 {
                    return Err(Exception::error("oval items need 4 coordinates"));
                }
                Shape::Oval {
                    x1: coords[0].min(coords[2]),
                    y1: coords[1].min(coords[3]),
                    x2: coords[0].max(coords[2]),
                    y2: coords[1].max(coords[3]),
                    filled: opts.filled.unwrap_or(false),
                }
            }
            "text" => {
                if coords.len() != 2 {
                    return Err(Exception::error("text items need 2 coordinates"));
                }
                Shape::Text {
                    x: coords[0],
                    y: coords[1],
                    text: opts.text.clone().unwrap_or_default(),
                }
            }
            other => {
                return Err(Exception::error(format!(
                    "bad item type \"{other}\": must be line, oval, rectangle, or text"
                )))
            }
        };
        let id = self.next_id.get() + 1;
        self.next_id.set(id);
        self.items.borrow_mut().push(Item {
            id,
            shape,
            color: opts.color.unwrap_or_else(|| "black".to_string()),
            font: opts.font.unwrap_or_else(|| "fixed".to_string()),
            tag: opts.tag.unwrap_or_default(),
        });
        let rect = {
            let items = self.items.borrow();
            self.item_rect(app, items.last().unwrap())
        };
        app.schedule_redraw_damage(path, rect);
        Ok(id.to_string())
    }

    /// The screen rect an item can touch: its bbox padded for line
    /// width and outline overshoot, or the glyph extent for text (whose
    /// bbox is just the anchor point).
    fn item_rect(&self, app: &TkApp, item: &Item) -> Rect {
        if let Shape::Text { x, y, text } = &item.shape {
            if let Ok((_, m)) = app.cache().font(app.conn(), &item.font) {
                let w = text.chars().count() as u32 * m.char_width;
                return Rect::new(*x - 1, *y - m.ascent as i32 - 1, w + 2, m.line_height() + 2);
            }
        }
        let (x1, y1, x2, y2) = Canvas::bbox_of(&item.shape);
        let pad = match &item.shape {
            Shape::Line { width, .. } => *width as i32 + 1,
            _ => 2,
        };
        Rect::new(
            x1 - pad,
            y1 - pad,
            (x2 - x1 + 2 * pad) as u32,
            (y2 - y1 + 2 * pad) as u32,
        )
    }

    /// Schedules a repaint covering `rects`; an empty set still schedules
    /// (a degenerate rect) so both damage modes redraw in lockstep.
    fn damage_rects(&self, app: &TkApp, path: &str, rects: Vec<Rect>) {
        if rects.is_empty() {
            return app.schedule_redraw_damage(path, Rect::new(0, 0, 1, 1));
        }
        for r in rects {
            app.schedule_redraw_damage(path, r);
        }
    }

    fn bbox_of(shape: &Shape) -> (i32, i32, i32, i32) {
        match shape {
            Shape::Line { points, .. } => {
                let xs: Vec<i32> = points.iter().map(|p| p.0).collect();
                let ys: Vec<i32> = points.iter().map(|p| p.1).collect();
                (
                    *xs.iter().min().unwrap_or(&0),
                    *ys.iter().min().unwrap_or(&0),
                    *xs.iter().max().unwrap_or(&0),
                    *ys.iter().max().unwrap_or(&0),
                )
            }
            Shape::Rectangle { x1, y1, x2, y2, .. } | Shape::Oval { x1, y1, x2, y2, .. } => {
                (*x1, *y1, *x2, *y2)
            }
            Shape::Text { x, y, .. } => (*x, *y, *x, *y),
        }
    }

    fn move_shape(shape: &mut Shape, dx: i32, dy: i32) {
        match shape {
            Shape::Line { points, .. } => {
                for p in points {
                    p.0 += dx;
                    p.1 += dy;
                }
            }
            Shape::Rectangle { x1, y1, x2, y2, .. } | Shape::Oval { x1, y1, x2, y2, .. } => {
                *x1 += dx;
                *x2 += dx;
                *y1 += dy;
                *y2 += dy;
            }
            Shape::Text { x, y, .. } => {
                *x += dx;
                *y += dy;
            }
        }
    }
}

impl WidgetOps for Canvas {
    fn class(&self) -> &'static str {
        "Canvas"
    }

    fn config(&self) -> &ConfigStore {
        &self.config
    }

    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult {
        if let Some(r) = handle_configure(app, self, path, argv) {
            return r;
        }
        let sub = argv
            .get(1)
            .ok_or_else(|| {
                Exception::error(format!(
                    "wrong # args: should be \"{path} option ?arg ...?\""
                ))
            })?
            .as_str();
        match sub {
            "create" => self.create_item(app, path, argv),
            "delete" => {
                let spec = argv.get(2).map(String::as_str).unwrap_or("all");
                let doomed = self.matching(spec);
                let rects = {
                    let items = self.items.borrow();
                    doomed
                        .iter()
                        .map(|&i| self.item_rect(app, &items[i]))
                        .collect()
                };
                let mut items = self.items.borrow_mut();
                for &i in doomed.iter().rev() {
                    items.remove(i);
                }
                drop(items);
                self.damage_rects(app, path, rects);
                Ok(String::new())
            }
            "move" => {
                if argv.len() != 5 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} move tagOrId dx dy\""
                    )));
                }
                let dx: i32 = argv[3].parse().map_err(|_| Exception::error("bad dx"))?;
                let dy: i32 = argv[4].parse().map_err(|_| Exception::error("bad dy"))?;
                let which = self.matching(&argv[2]);
                // Damage both where each item was and where it lands.
                let mut rects: Vec<Rect> = {
                    let items = self.items.borrow();
                    which
                        .iter()
                        .map(|&i| self.item_rect(app, &items[i]))
                        .collect()
                };
                {
                    let mut items = self.items.borrow_mut();
                    for &i in &which {
                        Canvas::move_shape(&mut items[i].shape, dx, dy);
                    }
                }
                {
                    let items = self.items.borrow();
                    rects.extend(which.iter().map(|&i| self.item_rect(app, &items[i])));
                }
                self.damage_rects(app, path, rects);
                Ok(String::new())
            }
            "coords" => {
                let which = self.matching(
                    argv.get(2)
                        .ok_or_else(|| Exception::error("wrong # args: coords tagOrId"))?,
                );
                let items = self.items.borrow();
                match which.first() {
                    Some(&i) => {
                        let (x1, y1, x2, y2) = Canvas::bbox_of(&items[i].shape);
                        Ok(format!("{x1} {y1} {x2} {y2}"))
                    }
                    None => Ok(String::new()),
                }
            }
            "bbox" => {
                let which = self.matching(argv.get(2).map(String::as_str).unwrap_or("all"));
                if which.is_empty() {
                    return Ok(String::new());
                }
                let items = self.items.borrow();
                let boxes: Vec<(i32, i32, i32, i32)> = which
                    .iter()
                    .map(|&i| Canvas::bbox_of(&items[i].shape))
                    .collect();
                let x1 = boxes.iter().map(|b| b.0).min().unwrap();
                let y1 = boxes.iter().map(|b| b.1).min().unwrap();
                let x2 = boxes.iter().map(|b| b.2).max().unwrap();
                let y2 = boxes.iter().map(|b| b.3).max().unwrap();
                Ok(format!("{x1} {y1} {x2} {y2}"))
            }
            "itemconfigure" => {
                if argv.len() < 3 {
                    return Err(Exception::error(format!(
                        "wrong # args: should be \"{path} itemconfigure tagOrId ?option value ...?\""
                    )));
                }
                let opts = parse_item_opts(&argv[3..])?;
                let which = self.matching(&argv[2]);
                // Old and new extents both repaint (text may shrink).
                let mut rects: Vec<Rect> = {
                    let items = self.items.borrow();
                    which
                        .iter()
                        .map(|&i| self.item_rect(app, &items[i]))
                        .collect()
                };
                {
                    let mut items = self.items.borrow_mut();
                    for &i in &which {
                        if let Some(c) = &opts.color {
                            items[i].color = c.clone();
                        }
                        if let Some(f) = &opts.font {
                            items[i].font = f.clone();
                        }
                        if let Some(t) = &opts.text {
                            if let Shape::Text { text, .. } = &mut items[i].shape {
                                *text = t.clone();
                            }
                        }
                    }
                }
                {
                    let items = self.items.borrow();
                    rects.extend(which.iter().map(|&i| self.item_rect(app, &items[i])));
                }
                self.damage_rects(app, path, rects);
                Ok(String::new())
            }
            "items" => {
                let items = self.items.borrow();
                Ok(items
                    .iter()
                    .map(|i| i.id.to_string())
                    .collect::<Vec<_>>()
                    .join(" "))
            }
            other => Err(bad_subcommand(
                path,
                other,
                "bbox, configure, coords, create, delete, itemconfigure, items, or move",
            )),
        }
    }

    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception> {
        let rec = app.require_window(path)?;
        let bg = app
            .cache()
            .color(app.conn(), &self.config.get("-background"))?;
        app.conn().set_window_background(rec.xid, bg);
        let (w, h) = crate::draw::parse_geometry(&self.config.get("-geometry"))?;
        app.geometry_request(path, w, h);
        app.schedule_redraw(path);
        Ok(())
    }

    fn event(&self, app: &TkApp, path: &str, ev: &Event) {
        if matches!(ev, Event::Expose { .. }) {
            app.expose_damage(path, ev);
        }
    }

    fn redraw(&self, app: &TkApp, path: &str) {
        let Some(rec) = app.window(path) else { return };
        if !rec.mapped.get() {
            return;
        }
        let conn = app.conn();
        let cache = app.cache();
        conn.clear_area(rec.xid, 0, 0, 0, 0);
        let bw = self.config.get_pixels("-borderwidth").max(0) as u32;
        if bw > 0 {
            if let Ok(border) = cache.border(conn, &self.config.get("-background")) {
                draw_3d_rect(
                    conn,
                    cache,
                    rec.xid,
                    border,
                    0,
                    0,
                    rec.width.get(),
                    rec.height.get(),
                    bw,
                    self.config.get_relief("-relief"),
                );
            }
        }
        for item in self.items.borrow().iter() {
            let Ok(color) = cache.color(conn, &item.color) else {
                continue;
            };
            match &item.shape {
                Shape::Line { points, width } => {
                    let gc = cache.gc(
                        conn,
                        GcValues {
                            foreground: color,
                            line_width: *width,
                            ..Default::default()
                        },
                    );
                    for pair in points.windows(2) {
                        conn.draw_line(rec.xid, gc, pair[0].0, pair[0].1, pair[1].0, pair[1].1);
                    }
                }
                Shape::Rectangle {
                    x1,
                    y1,
                    x2,
                    y2,
                    filled,
                } => {
                    let gc = cache.gc(
                        conn,
                        GcValues {
                            foreground: color,
                            ..Default::default()
                        },
                    );
                    let (w, h) = ((x2 - x1).max(0) as u32, (y2 - y1).max(0) as u32);
                    if *filled {
                        conn.fill_rectangle(rec.xid, gc, *x1, *y1, w, h);
                    } else {
                        conn.draw_rectangle(rec.xid, gc, *x1, *y1, w, h);
                    }
                }
                Shape::Oval {
                    x1,
                    y1,
                    x2,
                    y2,
                    filled,
                } => {
                    let gc = cache.gc(
                        conn,
                        GcValues {
                            foreground: color,
                            ..Default::default()
                        },
                    );
                    // Parametric ellipse: outline as short chords, fill as
                    // horizontal spans.
                    let cx = (x1 + x2) as f64 / 2.0;
                    let cy = (y1 + y2) as f64 / 2.0;
                    let rx = (x2 - x1) as f64 / 2.0;
                    let ry = (y2 - y1) as f64 / 2.0;
                    if *filled {
                        for yy in *y1..=*y2 {
                            let t = (yy as f64 - cy) / ry.max(0.5);
                            if t.abs() <= 1.0 {
                                let half = rx * (1.0 - t * t).sqrt();
                                conn.draw_line(
                                    rec.xid,
                                    gc,
                                    (cx - half) as i32,
                                    yy,
                                    (cx + half) as i32,
                                    yy,
                                );
                            }
                        }
                    } else {
                        let steps = 48;
                        let mut prev: Option<(i32, i32)> = None;
                        for s in 0..=steps {
                            let a = s as f64 / steps as f64 * std::f64::consts::TAU;
                            let px = (cx + rx * a.cos()) as i32;
                            let py = (cy + ry * a.sin()) as i32;
                            if let Some((qx, qy)) = prev {
                                conn.draw_line(rec.xid, gc, qx, qy, px, py);
                            }
                            prev = Some((px, py));
                        }
                    }
                }
                Shape::Text { x, y, text } => {
                    let Ok((font, _m)) = cache.font(conn, &item.font) else {
                        continue;
                    };
                    let gc = cache.gc(
                        conn,
                        GcValues {
                            foreground: color,
                            font,
                            ..Default::default()
                        },
                    );
                    conn.draw_string(rec.xid, gc, *x, *y, text);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::app::TkEnv;

    fn setup() -> (TkEnv, crate::app::TkApp) {
        let env = TkEnv::new();
        let app = env.app("t");
        app.eval("canvas .c -geometry 100x80").unwrap();
        app.eval("pack append . .c {top}").unwrap();
        app.update();
        (env, app)
    }

    #[test]
    fn create_returns_increasing_ids() {
        let (_env, app) = setup();
        let a = app.eval(".c create line 0 0 10 10").unwrap();
        let b = app.eval(".c create rectangle 5 5 20 20").unwrap();
        assert_ne!(a, b);
        assert_eq!(app.eval(".c items").unwrap(), format!("{a} {b}"));
    }

    #[test]
    fn items_draw_pixels() {
        let (env, app) = setup();
        app.eval(".c create rectangle 10 10 30 30 -fill red")
            .unwrap();
        app.update();
        let rec = app.window(".c").unwrap();
        let red = xsim::Rgb::new(255, 0, 0);
        let painted = env
            .display()
            .with_server(|s| s.window_surface(rec.xid).unwrap().count_pixels(red));
        assert!(painted >= 19 * 19, "filled rect: {painted} red pixels");
    }

    #[test]
    fn move_and_coords() {
        let (_env, app) = setup();
        let id = app.eval(".c create rectangle 0 0 10 10").unwrap();
        app.eval(&format!(".c move {id} 5 7")).unwrap();
        assert_eq!(app.eval(&format!(".c coords {id}")).unwrap(), "5 7 15 17");
    }

    #[test]
    fn tags_address_groups() {
        let (_env, app) = setup();
        app.eval(".c create line 0 0 5 5 -tag grid").unwrap();
        app.eval(".c create line 0 5 5 0 -tag grid").unwrap();
        app.eval(".c create text 50 50 -text label").unwrap();
        app.eval(".c move grid 10 10").unwrap();
        assert_eq!(app.eval(".c coords grid").unwrap(), "10 10 15 15");
        app.eval(".c delete grid").unwrap();
        assert_eq!(app.eval(".c items").unwrap().split_whitespace().count(), 1);
        app.eval(".c delete all").unwrap();
        assert_eq!(app.eval(".c items").unwrap(), "");
    }

    #[test]
    fn itemconfigure_changes_text() {
        let (env, app) = setup();
        let id = app.eval(".c create text 20 40 -text before").unwrap();
        app.update();
        app.eval(&format!(".c itemconfigure {id} -text after"))
            .unwrap();
        app.update();
        let dump = env.display().ascii_dump();
        assert!(dump.contains("after"), "{dump}");
        assert!(!dump.contains("before"), "{dump}");
    }

    #[test]
    fn bbox_covers_items() {
        let (_env, app) = setup();
        app.eval(".c create line 5 6 50 60").unwrap();
        app.eval(".c create rectangle 40 2 70 30").unwrap();
        assert_eq!(app.eval(".c bbox all").unwrap(), "5 2 70 60");
    }

    #[test]
    fn oval_draws_inside_bbox() {
        let (env, app) = setup();
        app.eval(".c create oval 20 20 60 50 -fill blue").unwrap();
        app.update();
        let rec = app.window(".c").unwrap();
        let blue = xsim::Rgb::new(0, 0, 255);
        env.display().with_server(|s| {
            let surf = s.window_surface(rec.xid).unwrap();
            assert_eq!(surf.pixel(40, 35), blue, "center is filled");
            assert_ne!(surf.pixel(21, 21), blue, "corner is outside the ellipse");
        });
    }

    #[test]
    fn bad_item_type_errors() {
        let (_env, app) = setup();
        assert!(app.eval(".c create polygon 0 0 1 1").is_err());
        assert!(app.eval(".c create line 0 0").is_err());
        assert!(app.eval(".c create rectangle 0 0 1").is_err());
    }

    #[test]
    fn bar_chart_in_pure_tcl() {
        // The "large class of interesting applications entirely in Tcl"
        // the paper promises: a bar chart drawn by a Tcl proc.
        let (_env, app) = setup();
        app.eval(
            r#"
            proc barchart {c values} {
                $c delete all
                set x 10
                foreach v $values {
                    $c create rectangle $x [expr {70 - $v}] [expr {$x + 15}] 70 -fill SteelBlue -tag bar
                    set x [expr {$x + 20}]
                }
            }
            barchart .c {30 50 20 60}
        "#,
        )
        .unwrap();
        app.update();
        assert_eq!(app.eval(".c items").unwrap().split_whitespace().count(), 4);
        assert_eq!(app.eval(".c bbox bar").unwrap(), "10 10 85 70");
    }
}
