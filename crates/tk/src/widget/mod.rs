//! The widget framework: the [`WidgetOps`] trait, creation plumbing, and
//! registration of all widget-creation commands (Section 4).
//!
//! For each widget type there is one Tcl command named after the type
//! (`button .hello -text ...`). Creating a widget also creates a *widget
//! command* named after the window's path name (`.hello flash`), which is
//! used to manipulate the widget afterwards.

pub mod button;
pub mod canvas;
pub mod entry;
pub mod frame;
pub mod listbox;
pub mod menu;
pub mod message;
pub mod scale;
pub mod scrollbar;

use std::rc::Rc;

use tcl::{Exception, TclResult};
use xsim::Event;

use crate::app::TkApp;
use crate::config::ConfigStore;

/// Behavior every widget implements.
pub trait WidgetOps {
    /// The widget class name (`"Button"`).
    fn class(&self) -> &'static str;

    /// The widget's option storage.
    fn config(&self) -> &ConfigStore;

    /// Handles the widget command (`.path subcommand args...`).
    fn command(&self, app: &TkApp, path: &str, argv: &[String]) -> TclResult;

    /// Re-applies configuration: window attributes, geometry request, and
    /// a redraw. Called after creation and every `configure`.
    fn apply_config(&self, app: &TkApp, path: &str) -> Result<(), Exception>;

    /// Built-in event handler (the C-level handlers of real Tk).
    fn event(&self, _app: &TkApp, _path: &str, _ev: &Event) {}

    /// A watched `-variable` changed: schedule whatever repaint the
    /// widget needs. The default repaints everything; widgets with a
    /// small state indicator narrow the damage.
    fn variable_changed(&self, app: &TkApp, path: &str) {
        app.schedule_redraw(path);
    }

    /// Repaints the widget.
    fn redraw(&self, _app: &TkApp, _path: &str) {}

    /// Cleanup hook when the window is destroyed.
    fn destroyed(&self, _app: &TkApp, _path: &str) {}
}

/// Registers every widget-creation command on an application.
pub fn register_all(app: &TkApp) {
    button::register(app);
    canvas::register(app);
    entry::register(app);
    frame::register(app);
    listbox::register(app);
    menu::register(app);
    message::register(app);
    scale::register(app);
    scrollbar::register(app);
}

/// Shared creation path: makes the window, attaches the widget, resolves
/// options (command line > option database > defaults), and registers the
/// widget command. Returns the path name, Tk's creation result.
pub fn create_widget(app: &TkApp, argv: &[String], widget: Rc<dyn WidgetOps>) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(format!(
            "wrong # args: should be \"{} pathName ?options?\"",
            argv.first().map(String::as_str).unwrap_or("widget")
        )));
    }
    let path = argv[1].clone();
    let rec = app.make_window(&path, widget.class(), 1, 1, 0)?;
    *rec.widget.borrow_mut() = Some(widget.clone());
    let result = (|| -> Result<(), Exception> {
        widget.config().init(app, &path)?;
        widget.config().set_args(app, &argv[2..])?;
        widget.apply_config(app, &path)?;
        Ok(())
    })();
    if let Err(e) = result {
        // Creation failed after the window existed: tear it down.
        let _ = app.destroy_window(&path);
        return Err(e);
    }
    register_widget_command(app, &path);
    Ok(path)
}

/// Registers the per-widget Tcl command named after the window path.
pub fn register_widget_command(app: &TkApp, path: &str) {
    app.register_command(path, move |app, _interp, argv| {
        let path = &argv[0];
        let rec = app.require_window(path)?;
        let widget = rec.widget.borrow().clone();
        match widget {
            Some(w) => w.command(app, path, argv),
            None => Err(Exception::error(format!(
                "window \"{path}\" has no widget command"
            ))),
        }
    });
}

/// Handles the `configure` subcommand shared by every widget command
/// ("the configure form is supported by all widget commands").
///
/// Returns `Some(result)` when `argv[1]` was `configure`, `None` otherwise.
pub fn handle_configure(
    app: &TkApp,
    widget: &dyn WidgetOps,
    path: &str,
    argv: &[String],
) -> Option<TclResult> {
    if argv.len() < 2 || argv[1] != "configure" {
        return None;
    }
    Some(match argv.len() {
        2 => widget.config().info(None),
        3 => widget.config().info(Some(&argv[2])),
        _ => widget
            .config()
            .set_args(app, &argv[2..])
            .and_then(|_| widget.apply_config(app, path))
            .map(|_| String::new()),
    })
}

/// The standard "bad subcommand" error.
pub fn bad_subcommand(path: &str, sub: &str, expected: &str) -> Exception {
    Exception::error(format!(
        "bad option \"{sub}\" for window \"{path}\": should be {expected}"
    ))
}
