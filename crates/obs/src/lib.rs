//! `rtk-obs` — the observability core shared by every layer of the
//! toolkit (xsim server, Tk intrinsics, wish, benchmarks).
//!
//! The paper's empirical claims (Table II, the Section 3.3 cache
//! argument) all rest on counting and timing protocol traffic, so this
//! crate provides the primitives to do that *cheaply enough to leave on
//! in production*:
//!
//! * [`Registry`] — named monotonic counters and latency histograms with
//!   interior mutability, so instrumented code needs only `&Registry`;
//! * [`Histogram`] — fixed log₂-bucket latency histograms (no external
//!   dependencies, constant memory, O(1) record);
//! * [`Span`] — a drop guard that times a scope into a histogram;
//! * [`Ring`] — a bounded ring buffer for trace entries;
//! * [`span`] — rtk-trace: causal span records across the pipeline, with
//!   Chrome trace-event, folded-stack, and virtual-clock-profile exports;
//! * [`json`] — a tiny hand-rolled JSON emitter used by `obs dump`.
//!
//! The counter/histogram [`Registry`] stays single-threaded
//! (`Cell`/`RefCell`) because each Tk application owns its registry on
//! its own thread; the [`Tracer`] and [`VirtualClock`] are `Send + Sync`
//! (`Mutex`/atomics) because the wire transport's server thread records
//! flush and fault spans into the same per-application span tree.
//! Counters are plain integer bumps and histogram records are one array
//! increment either way.

mod hist;
pub mod json;
mod registry;
mod ring;
pub mod span;

pub use hist::Histogram;
pub use registry::{Registry, Span};
pub use ring::Ring;
pub use span::{SpanGuard, SpanId, SpanRecord, SpanShape, Tracer, VirtualClock};
