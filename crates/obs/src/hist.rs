//! Fixed log₂-bucket latency histograms.
//!
//! Values are nanoseconds. Bucket `i` holds values whose highest set bit
//! is `i`, i.e. the half-open range `[2^(i-1), 2^i)` (bucket 0 holds the
//! value 0 and 1 ns). With `BUCKETS = 40` the top bucket covers ~550 s,
//! far beyond any latency this toolkit produces; larger values clamp into
//! the last bucket. Recording is one comparison and one array increment,
//! cheap enough for always-on instrumentation.

/// Number of log₂ buckets.
pub const BUCKETS: usize = 40;

/// A latency histogram with fixed log₂ buckets over nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` in nanoseconds.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i).saturating_sub(1).max(1)
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Records a [`std::time::Duration`].
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values in nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: linearly
    /// interpolated within the bucket where the cumulative count crosses
    /// the rank, clamped to the observed min/max. Reporting the bucket
    /// upper bound instead would inflate every quantile by up to 2x (a
    /// lone 719 ns sample would report p50 = 1023 ns).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // The overflow bucket has no meaningful upper bound;
                // report the observed max instead.
                if i == BUCKETS - 1 {
                    return self.max;
                }
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = Self::bucket_upper(i);
                // Fraction of this bucket's samples at or below the rank,
                // assuming samples spread uniformly across the bucket.
                let into = (rank - seen) as f64 / c as f64;
                let est = lower as f64 + into * (upper - lower) as f64;
                return (est as u64).clamp(self.min(), self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
            .collect()
    }

    /// One-line human summary, the `obs histogram` output format.
    pub fn summary(&self) -> String {
        format!(
            "count {} min {} mean {} p50 {} p90 {} p99 {} max {}",
            self.count,
            self.min(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max
        )
    }

    /// JSON object for `obs dump -format json`.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Object::new();
        o.field_u64("count", self.count);
        o.field_u64("sum_ns", self.sum);
        o.field_u64("min_ns", self.min());
        o.field_u64("mean_ns", self.mean());
        o.field_u64("p50_ns", self.quantile(0.50));
        o.field_u64("p90_ns", self.quantile(0.90));
        o.field_u64("p99_ns", self.quantile(0.99));
        o.field_u64("max_ns", self.max);
        let mut arr = crate::json::Array::new();
        for (le, c) in self.buckets() {
            let mut b = crate::json::Object::new();
            b.field_u64("le_ns", le);
            b.field_u64("count", c);
            arr.push_raw(&b.build());
        }
        o.field_raw("buckets", &arr.build());
        o.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(1_000);
        h.record(10_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 11_100);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.mean(), 3_700);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max());
        // p50 of 100..100_000 should land within a factor of 2 of 50_000.
        assert!((32_768..=131_072).contains(&p50), "{p50}");
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        // A single sample reports itself, not its bucket's upper bound.
        let mut h = Histogram::new();
        h.record(719);
        assert_eq!(h.quantile(0.5), 719);
        assert_eq!(h.quantile(0.99), 719);

        // Two samples in one bucket: the interpolated p50 sits at the
        // bucket midpoint, strictly below the old upper-bound answer.
        let mut h = Histogram::new();
        h.record(600);
        h.record(900);
        let p50 = h.quantile(0.5);
        assert!((600..1023).contains(&p50), "{p50}");
        assert!(h.quantile(1.0) <= 900);
    }

    #[test]
    fn large_values_clamp_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
    }

    #[test]
    fn json_has_percentiles_and_buckets() {
        let mut h = Histogram::new();
        h.record(500);
        let j = h.to_json();
        assert!(j.contains("\"count\":1"), "{j}");
        assert!(j.contains("\"p99_ns\""), "{j}");
        assert!(j.contains("\"buckets\":[{"), "{j}");
    }
}
