//! A named-metric registry: monotonic counters and latency histograms
//! behind interior mutability, so instrumented code only needs `&Registry`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::hist::Histogram;

/// Named counters and histograms for one subsystem (e.g. one Tk app).
///
/// Counter bumps are a `BTreeMap` lookup plus an integer add; histogram
/// records add one bucket increment. Both are cheap enough to stay on in
/// production; the expensive operations (snapshot, JSON) only run when
/// someone asks.
#[derive(Default)]
pub struct Registry {
    counters: RefCell<BTreeMap<String, u64>>,
    histograms: RefCell<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds 1 to the named counter, creating it at zero first if needed.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut c = self.counters.borrow_mut();
        match c.get_mut(name) {
            Some(v) => *v += n,
            None => {
                c.insert(name.to_string(), n);
            }
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Records `ns` into the named histogram, creating it if needed.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .record(ns);
    }

    /// Records a duration into the named histogram.
    pub fn record_duration(&self, name: &str, d: std::time::Duration) {
        self.record_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Snapshot of one histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.borrow().get(name).cloned()
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.histograms.borrow().keys().cloned().collect()
    }

    /// Starts a span that records its elapsed time into `name` when
    /// dropped (or when [`Span::finish`] is called).
    pub fn span<'r>(&'r self, name: &str) -> Span<'r> {
        Span {
            registry: self,
            name: name.to_string(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Zeroes every counter and histogram (names are forgotten too, so a
    /// snapshot after reset shows only metrics touched since).
    pub fn reset(&self) {
        self.counters.borrow_mut().clear();
        self.histograms.borrow_mut().clear();
    }

    /// JSON object `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = crate::json::Object::new();
        for (k, v) in self.counters() {
            counters.field_u64(&k, v);
        }
        let mut hists = crate::json::Object::new();
        for name in self.histogram_names() {
            if let Some(h) = self.histogram(&name) {
                hists.field_raw(&name, &h.to_json());
            }
        }
        let mut o = crate::json::Object::new();
        o.field_raw("counters", &counters.build());
        o.field_raw("histograms", &hists.build());
        o.build()
    }
}

/// A drop guard timing one scope into a registry histogram.
pub struct Span<'r> {
    registry: &'r Registry,
    name: String,
    start: Instant,
    done: bool,
}

impl Span<'_> {
    /// Ends the span now, recording the elapsed time.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            self.registry
                .record_duration(&self.name, self.start.elapsed());
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let r = Registry::new();
        r.incr("b");
        r.add("a", 5);
        r.incr("b");
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 2);
        assert_eq!(r.counter("missing"), 0);
        let names: Vec<String> = r.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Registry::new();
        {
            let _s = r.span("work");
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let h = r.histogram("work").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 50_000, "{}", h.max());
    }

    #[test]
    fn reset_forgets_everything() {
        let r = Registry::new();
        r.incr("x");
        r.record_ns("h", 10);
        r.reset();
        assert!(r.counters().is_empty());
        assert!(r.histogram("h").is_none());
    }

    #[test]
    fn json_is_structurally_valid() {
        let r = Registry::new();
        r.incr("events");
        r.record_ns("lat", 123);
        let j = r.to_json();
        assert!(crate::json::is_valid(&j), "{j}");
        assert!(j.contains("\"events\":1"), "{j}");
        assert!(j.contains("\"lat\":{"), "{j}");
    }
}
