//! A tiny JSON emitter and parser — just enough for `obs dump -format
//! json`, the bench harness, and the CI request-budget gate, with correct
//! string escaping and no dependencies.

/// Escapes `s` into a quoted JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds a JSON object field by field.
#[derive(Default)]
pub struct Object {
    parts: Vec<String>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn field_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        self.parts.push(format!("{}:{}", string(key), raw_json));
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        let v = string(value);
        self.field_raw(key, &v)
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.field_raw(key, &value.to_string())
    }

    /// Adds a float field (finite values; NaN/inf become null).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.field_raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Serializes the object.
    pub fn build(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Builds a JSON array element by element.
#[derive(Default)]
pub struct Array {
    parts: Vec<String>,
}

impl Array {
    /// An empty array.
    pub fn new() -> Array {
        Array::default()
    }

    /// Appends already-serialized JSON.
    pub fn push_raw(&mut self, raw_json: &str) -> &mut Self {
        self.parts.push(raw_json.to_string());
        self
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        let v = string(value);
        self.push_raw(&v)
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.push_raw(&value.to_string())
    }

    /// Serializes the array.
    pub fn build(&self) -> String {
        format!("[{}]", self.parts.join(","))
    }
}

/// Minimal structural validation: balanced strings, braces, and brackets.
/// Used by tests to check `obs dump` output without a JSON dependency.
pub fn is_valid(s: &str) -> bool {
    let mut stack: Vec<char> = Vec::new();
    let mut chars = s.chars().peekable();
    let mut in_string = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                any = true;
                stack.push(c);
            }
            '}' if stack.pop() != Some('{') => {
                return false;
            }
            ']' if stack.pop() != Some('[') => {
                return false;
            }
            _ => {}
        }
    }
    any && stack.is_empty() && !in_string
}

/// A parsed JSON value. Numbers keep their source text so exact integer
/// budgets survive the round trip without float loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in source order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Value::Number(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), r#""a\"b""#);
        assert_eq!(string("a\\b"), r#""a\\b""#);
        assert_eq!(string("a\nb"), r#""a\nb""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = Array::new();
        inner.push_u64(1).push_str("two");
        let mut o = Object::new();
        o.field_str("name", "x")
            .field_u64("n", 7)
            .field_bool("on", true)
            .field_raw("list", &inner.build());
        let j = o.build();
        assert_eq!(j, r#"{"name":"x","n":7,"on":true,"list":[1,"two"]}"#);
        assert!(is_valid(&j));
    }

    #[test]
    fn validator_rejects_imbalance() {
        assert!(!is_valid("{\"a\":1"));
        assert!(!is_valid("{]}"));
        assert!(!is_valid("plain text"));
        assert!(is_valid("{\"a\":\"}\"}"));
    }

    #[test]
    fn parser_round_trips_emitter_output() {
        let mut inner = Array::new();
        inner.push_u64(1).push_str("two");
        let mut o = Object::new();
        o.field_str("name", "x\n\"y\"")
            .field_u64("n", 18446744073709551615)
            .field_bool("on", true)
            .field_raw("list", &inner.build())
            .field_raw("none", "null");
        let v = parse(&o.build()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("on"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list[0].as_u64(), Some(1));
        assert_eq!(list[1].as_str(), Some("two"));
    }

    #[test]
    fn parser_handles_whitespace_nesting_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : \"c\\u0041\" } , -2.5e1 ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("cA"));
        assert_eq!(arr[2], Value::Number("-2.5e1".into()));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
    }
}
