//! A tiny JSON emitter — just enough for `obs dump -format json` and the
//! bench harness, with correct string escaping and no dependencies.

/// Escapes `s` into a quoted JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds a JSON object field by field.
#[derive(Default)]
pub struct Object {
    parts: Vec<String>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn field_raw(&mut self, key: &str, raw_json: &str) -> &mut Self {
        self.parts.push(format!("{}:{}", string(key), raw_json));
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        let v = string(value);
        self.field_raw(key, &v)
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.field_raw(key, &value.to_string())
    }

    /// Adds a float field (finite values; NaN/inf become null).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.field_raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.field_raw(key, if value { "true" } else { "false" })
    }

    /// Serializes the object.
    pub fn build(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Builds a JSON array element by element.
#[derive(Default)]
pub struct Array {
    parts: Vec<String>,
}

impl Array {
    /// An empty array.
    pub fn new() -> Array {
        Array::default()
    }

    /// Appends already-serialized JSON.
    pub fn push_raw(&mut self, raw_json: &str) -> &mut Self {
        self.parts.push(raw_json.to_string());
        self
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        let v = string(value);
        self.push_raw(&v)
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.push_raw(&value.to_string())
    }

    /// Serializes the array.
    pub fn build(&self) -> String {
        format!("[{}]", self.parts.join(","))
    }
}

/// Minimal structural validation: balanced strings, braces, and brackets.
/// Used by tests to check `obs dump` output without a JSON dependency.
pub fn is_valid(s: &str) -> bool {
    let mut stack: Vec<char> = Vec::new();
    let mut chars = s.chars().peekable();
    let mut in_string = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                any = true;
                stack.push(c);
            }
            '}' if stack.pop() != Some('{') => {
                return false;
            }
            ']' if stack.pop() != Some('[') => {
                return false;
            }
            _ => {}
        }
    }
    any && stack.is_empty() && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), r#""a\"b""#);
        assert_eq!(string("a\\b"), r#""a\\b""#);
        assert_eq!(string("a\nb"), r#""a\nb""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = Array::new();
        inner.push_u64(1).push_str("two");
        let mut o = Object::new();
        o.field_str("name", "x")
            .field_u64("n", 7)
            .field_bool("on", true)
            .field_raw("list", &inner.build());
        let j = o.build();
        assert_eq!(j, r#"{"name":"x","n":7,"on":true,"list":[1,"two"]}"#);
        assert!(is_valid(&j));
    }

    #[test]
    fn validator_rejects_imbalance() {
        assert!(!is_valid("{\"a\":1"));
        assert!(!is_valid("{]}"));
        assert!(!is_valid("plain text"));
        assert!(is_valid("{\"a\":\"}\"}"));
    }
}
