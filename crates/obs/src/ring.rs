//! A bounded ring buffer for trace entries.
//!
//! Pushing beyond capacity silently drops the oldest entry, so a trace
//! that is left on forever uses constant memory. The buffer also keeps a
//! running sequence number of everything ever pushed, which lets readers
//! detect how much history was lost.

use std::collections::VecDeque;

/// A bounded FIFO that drops its oldest element when full.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    pushed: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `cap` elements (`cap` ≥ 1).
    pub fn new(cap: usize) -> Ring<T> {
        Ring {
            buf: VecDeque::with_capacity(cap.clamp(1, 1 << 20)),
            cap: cap.max(1),
            pushed: 0,
        }
    }

    /// Appends an element, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(item);
        self.pushed += 1;
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The most recent `n` elements, oldest first.
    pub fn last_n(&self, n: usize) -> Vec<&T> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).collect()
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of elements held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of elements ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Removes all elements (the total-pushed count is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_latest_cap_elements() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.total_pushed(), 10);
    }

    #[test]
    fn last_n_returns_tail_oldest_first() {
        let mut r = Ring::new(5);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(
            r.last_n(2).into_iter().copied().collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(r.last_n(99).len(), 5);
    }

    #[test]
    fn clear_empties_but_keeps_total() {
        let mut r = Ring::new(2);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        r.push('a');
        r.push('b');
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!['b']);
    }
}
