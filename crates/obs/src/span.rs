//! rtk-trace: causal span records across the event→script→redraw pipeline.
//!
//! A [`Tracer`] is a per-application, bounded, epoch-scoped store of
//! [`SpanRecord`]s. Spans carry both clocks — wall nanoseconds (for
//! profiling) and the virtual millisecond clock (deterministic) — plus a
//! sequence-number correlation key, so client-side spans line up with the
//! server-side flush batches and fault injections that share the same
//! sequence numbers. Causality is tracked two ways:
//!
//! * **Implicit nesting.** [`Tracer::begin`] parents the new span on the
//!   innermost open span (a stack, maintained by RAII [`SpanGuard`]s) —
//!   the natural shape for dispatch→binding→eval→damage.
//! * **Explicit causes.** Deferred work (an idle-queue redraw caused by an
//!   earlier damage event) records the causing span's id at schedule time
//!   and re-enters it with [`Tracer::scope`] at execution time, so the
//!   redraw span is a child of the event that damaged the window even
//!   though it runs much later.
//!
//! The store is bounded: once `cap` spans exist in the current epoch, new
//! spans are counted in `dropped` and not recorded. Dropping never
//! orphans a recorded span — a dropped span contributes no stack entry,
//! so its children attach to the nearest *recorded* ancestor.
//!
//! Span *structure* (counts by kind, parent/child edges) is deterministic
//! for deterministic workloads, which is what lets CI pin span-tree
//! shapes in `BUDGETS.json`; durations are report-only.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// A span identifier. `0` is reserved for "no span" / the epoch root.
pub type SpanId = u64;

/// A shared virtual clock in simulated milliseconds. Clones share the
/// same underlying counter; it is `Send + Sync` so the same clock can be
/// read from the server's dispatch thread while the owning application
/// advances it.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock starting at 0 virtual milliseconds.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The current virtual time in milliseconds.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the virtual time.
    pub fn set(&self, vms: u64) {
        self.0.store(vms, Ordering::Relaxed);
    }

    /// Advances the virtual time by `ms` and returns the new value.
    pub fn advance(&self, ms: u64) -> u64 {
        self.0.fetch_add(ms, Ordering::Relaxed) + ms
    }
}

/// Default bound on spans recorded per epoch.
pub const DEFAULT_SPAN_CAP: usize = 1 << 17;

/// One recorded span (or instant, when `start_ns == end_ns` and the span
/// was never open).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique within the tracer (never reused across epochs).
    pub id: SpanId,
    /// Parent span id; `0` = a root of its epoch.
    pub parent: SpanId,
    /// Pipeline stage, e.g. `"dispatch"`, `"redraw"`, `"flush"`.
    pub kind: &'static str,
    /// Free-form deterministic detail (widget path, event name, ...).
    pub detail: String,
    /// X client id of the connection this span belongs to (0 = unknown).
    pub client: u32,
    /// Sequence-number correlation key (request seq, event index, or send
    /// serial, depending on `kind`); 0 = none.
    pub seq: u64,
    /// Wall-clock start, nanoseconds since the tracer's shared origin.
    pub start_ns: u64,
    /// Wall-clock end; equals `start_ns` for instants and open spans.
    pub end_ns: u64,
    /// Virtual clock (simulated ms) at start.
    pub start_vms: u64,
    /// Virtual clock at end.
    pub end_vms: u64,
    /// Epoch the span belongs to (bumped by [`Tracer::reset_epoch`]).
    pub epoch: u64,
    /// Still in flight (its guard has not been dropped yet).
    pub open: bool,
}

impl SpanRecord {
    /// Wall-clock duration (0 for instants and open spans).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Virtual-clock duration in simulated milliseconds.
    pub fn dur_vms(&self) -> u64 {
        self.end_vms.saturating_sub(self.start_vms)
    }

    /// An instant is a zero-width marker that was never open.
    pub fn is_instant(&self) -> bool {
        !self.open && self.start_ns == self.end_ns && self.start_vms == self.end_vms
    }
}

struct TracerInner {
    spans: Vec<SpanRecord>,
    /// id → index into `spans` for the current epoch.
    index: BTreeMap<SpanId, usize>,
    /// Open-context stack: innermost span (or explicitly scoped cause) last.
    stack: Vec<SpanId>,
    next_id: SpanId,
    epoch: u64,
    dropped: u64,
    cap: usize,
    origin: Instant,
    vclock: Option<VirtualClock>,
    client: u32,
}

impl TracerInner {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn now_vms(&self) -> u64 {
        self.vclock.as_ref().map(|c| c.get()).unwrap_or(0)
    }

    /// The innermost stack entry that still refers to a recorded span
    /// (entries can dangle after an epoch reset dropped their record).
    fn resolve_parent(&self) -> SpanId {
        for &id in self.stack.iter().rev() {
            if self.index.contains_key(&id) {
                return id;
            }
        }
        0
    }
}

/// A shared handle to a per-application span store. Cloning is cheap and
/// all clones see the same store (the xsim connection and the toolkit
/// layers share one tracer per application). The store is behind a
/// `Mutex` so the wire transport's server thread can record flush and
/// fault spans into the same tree the client thread builds.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.inner.lock().unwrap();
        f.debug_struct("Tracer")
            .field("spans", &t.spans.len())
            .field("epoch", &t.epoch)
            .field("dropped", &t.dropped)
            .finish()
    }
}

impl Tracer {
    /// A tracer whose wall clock starts at `origin` (share one origin
    /// across applications so their traces align on a common timeline).
    pub fn new(origin: Instant) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                spans: Vec::new(),
                index: BTreeMap::new(),
                stack: Vec::new(),
                next_id: 1,
                epoch: 0,
                dropped: 0,
                cap: DEFAULT_SPAN_CAP,
                origin,
                vclock: None,
                client: 0,
            })),
        }
    }

    /// Attaches the simulated clock; spans started afterwards carry
    /// virtual start/end times.
    pub fn set_virtual_clock(&self, clock: VirtualClock) {
        self.inner.lock().unwrap().vclock = Some(clock);
    }

    /// Stamps subsequent spans with the owning X client id.
    pub fn set_client(&self, client: u32) {
        self.inner.lock().unwrap().client = client;
    }

    /// Overrides the per-epoch span bound (clamped to at least 16).
    pub fn set_cap(&self, cap: usize) {
        self.inner.lock().unwrap().cap = cap.max(16);
    }

    /// The innermost open span, `0` if none — the "cause" a scheduler
    /// captures for work it defers.
    pub fn current(&self) -> SpanId {
        self.inner.lock().unwrap().resolve_parent()
    }

    /// Opens a span parented on the innermost open span. The returned
    /// guard closes it on drop.
    pub fn begin(&self, kind: &'static str, detail: impl Into<String>, seq: u64) -> SpanGuard {
        let parent = self.inner.lock().unwrap().resolve_parent();
        self.begin_at(kind, detail, seq, parent)
    }

    /// Opens a span with an explicit parent (causal chaining for deferred
    /// work). A `parent` that no longer exists records as an epoch root.
    pub fn begin_at(
        &self,
        kind: &'static str,
        detail: impl Into<String>,
        seq: u64,
        parent: SpanId,
    ) -> SpanGuard {
        let mut t = self.inner.lock().unwrap();
        if t.spans.len() >= t.cap {
            t.dropped += 1;
            return SpanGuard {
                tracer: self.clone(),
                id: 0,
            };
        }
        let parent = if parent != 0 && t.index.contains_key(&parent) {
            parent
        } else {
            0
        };
        let id = t.next_id;
        t.next_id += 1;
        let (now, vms) = (t.now_ns(), t.now_vms());
        let rec = SpanRecord {
            id,
            parent,
            kind,
            detail: detail.into(),
            client: t.client,
            seq,
            start_ns: now,
            end_ns: now,
            start_vms: vms,
            end_vms: vms,
            epoch: t.epoch,
            open: true,
        };
        t.spans.push(rec);
        let idx = t.spans.len() - 1;
        t.index.insert(id, idx);
        t.stack.push(id);
        SpanGuard {
            tracer: self.clone(),
            id,
        }
    }

    /// Records a zero-width marker (damage event, fault injection, event
    /// enqueue) attached to the innermost open span.
    pub fn instant(&self, kind: &'static str, detail: impl Into<String>, seq: u64) {
        let mut t = self.inner.lock().unwrap();
        if t.spans.len() >= t.cap {
            t.dropped += 1;
            return;
        }
        let parent = t.resolve_parent();
        let id = t.next_id;
        t.next_id += 1;
        let (now, vms) = (t.now_ns(), t.now_vms());
        let rec = SpanRecord {
            id,
            parent,
            kind,
            detail: detail.into(),
            client: t.client,
            seq,
            start_ns: now,
            end_ns: now,
            start_vms: vms,
            end_vms: vms,
            epoch: t.epoch,
            open: false,
        };
        t.spans.push(rec);
        let idx = t.spans.len() - 1;
        t.index.insert(id, idx);
    }

    /// Pushes an explicit parent context (typically a cause captured at
    /// schedule time) without opening a span; `begin` calls made while the
    /// guard lives parent on it. Pushing `0` is allowed and pins children
    /// to the epoch root.
    pub fn scope(&self, parent: SpanId) -> ScopeGuard {
        self.inner.lock().unwrap().stack.push(parent);
        ScopeGuard {
            tracer: self.clone(),
            id: parent,
        }
    }

    fn end(&self, id: SpanId) {
        if id == 0 {
            return;
        }
        let mut t = self.inner.lock().unwrap();
        // Normally `id` is the innermost entry; tolerate interleaved
        // drops by removing the matching entry wherever it sits.
        if let Some(pos) = t.stack.iter().rposition(|&s| s == id) {
            t.stack.remove(pos);
        }
        let (now, vms) = (t.now_ns(), t.now_vms());
        if let Some(&idx) = t.index.get(&id) {
            let rec = &mut t.spans[idx];
            if rec.open {
                rec.end_ns = now;
                rec.end_vms = vms;
                rec.open = false;
            }
        }
    }

    fn end_scope(&self, id: SpanId) {
        let mut t = self.inner.lock().unwrap();
        if let Some(pos) = t.stack.iter().rposition(|&s| s == id) {
            t.stack.remove(pos);
        }
    }

    /// Clears the store and bumps the epoch. In-flight spans survive:
    /// they move to the new epoch, keeping their nesting among themselves;
    /// an open span whose parent was closed (and therefore cleared)
    /// re-parents to the new epoch root instead of dangling.
    pub fn reset_epoch(&self) {
        let mut t = self.inner.lock().unwrap();
        t.epoch += 1;
        let epoch = t.epoch;
        let survivors: Vec<SpanRecord> = t.spans.iter().filter(|s| s.open).cloned().collect();
        let kept: BTreeMap<SpanId, ()> = survivors.iter().map(|s| (s.id, ())).collect();
        t.spans.clear();
        t.index.clear();
        for mut s in survivors {
            s.epoch = epoch;
            if !kept.contains_key(&s.parent) {
                s.parent = 0;
            }
            let id = s.id;
            t.spans.push(s);
            let idx = t.spans.len() - 1;
            t.index.insert(id, idx);
        }
        t.dropped = 0;
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// Spans recorded in the current epoch.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// True when no spans have been recorded this epoch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped this epoch because the store was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Spans still in flight.
    pub fn open_count(&self) -> usize {
        let t = self.inner.lock().unwrap();
        t.spans.iter().filter(|s| s.open).count()
    }

    /// A copy of the current epoch's spans, in id order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let t = self.inner.lock().unwrap();
        let mut spans = t.spans.clone();
        spans.sort_by_key(|s| s.id);
        spans
    }

    /// Verifies the span tree is well-formed: every non-root parent
    /// exists, no span is still open (call at quiescence), and every
    /// closed interval is ordered. Returns the first violation.
    pub fn check_integrity(&self) -> Result<(), String> {
        let t = self.inner.lock().unwrap();
        for s in &t.spans {
            if s.parent != 0 && !t.index.contains_key(&s.parent) {
                return Err(format!(
                    "orphan span: id={} kind={} parent={} missing",
                    s.id, s.kind, s.parent
                ));
            }
            if s.open {
                return Err(format!("unclosed span: id={} kind={}", s.id, s.kind));
            }
            if s.end_ns < s.start_ns || s.end_vms < s.start_vms {
                return Err(format!("negative duration: id={} kind={}", s.id, s.kind));
            }
        }
        Ok(())
    }
}

/// RAII guard returned by [`Tracer::begin`]; closes the span on drop.
pub struct SpanGuard {
    tracer: Tracer,
    id: SpanId,
}

impl SpanGuard {
    /// The opened span's id (0 if the store was full and the span was
    /// dropped) — the value schedulers capture as a cause.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.end(self.id);
    }
}

/// RAII guard returned by [`Tracer::scope`]; pops the context on drop.
pub struct ScopeGuard {
    tracer: Tracer,
    id: SpanId,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        self.tracer.end_scope(self.id);
    }
}

// ---------------------------------------------------------------------------
// Exports: JSON, tree/flat text, Chrome trace events, folded stacks, and
// the virtual-clock profile.
// ---------------------------------------------------------------------------

/// Serializes spans as a JSON array (the `obs spans json` format).
pub fn spans_to_json(spans: &[SpanRecord]) -> String {
    let mut arr = json::Array::new();
    for s in spans {
        let mut o = json::Object::new();
        o.field_u64("id", s.id)
            .field_u64("parent", s.parent)
            .field_str("kind", s.kind)
            .field_str("detail", &s.detail)
            .field_u64("client", s.client as u64)
            .field_u64("seq", s.seq)
            .field_u64("start_ns", s.start_ns)
            .field_u64("end_ns", s.end_ns)
            .field_u64("start_vms", s.start_vms)
            .field_u64("end_vms", s.end_vms)
            .field_u64("epoch", s.epoch)
            .field_bool("open", s.open);
        arr.push_raw(&o.build());
    }
    arr.build()
}

fn children_map(spans: &[SpanRecord]) -> BTreeMap<SpanId, Vec<usize>> {
    let ids: BTreeMap<SpanId, ()> = spans.iter().map(|s| (s.id, ())).collect();
    let mut map: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let parent = if ids.contains_key(&s.parent) {
            s.parent
        } else {
            0
        };
        map.entry(parent).or_default().push(i);
    }
    map
}

fn one_line(s: &SpanRecord) -> String {
    let timing = if s.is_instant() {
        format!("@{}ns", s.start_ns)
    } else if s.open {
        "open".to_string()
    } else {
        format!("{}ns/{}vms", s.dur_ns(), s.dur_vms())
    };
    let mut line = format!("{} id={} {}", s.kind, s.id, timing);
    if s.seq != 0 {
        line.push_str(&format!(" seq={}", s.seq));
    }
    if !s.detail.is_empty() {
        line.push_str(&format!(" [{}]", s.detail));
    }
    line
}

/// Renders spans as an indented tree (the `obs spans tree` format).
pub fn spans_to_tree(spans: &[SpanRecord]) -> String {
    let map = children_map(spans);
    let mut out = String::new();
    fn walk(
        spans: &[SpanRecord],
        map: &BTreeMap<SpanId, Vec<usize>>,
        id: SpanId,
        depth: usize,
        out: &mut String,
    ) {
        if let Some(kids) = map.get(&id) {
            for &i in kids {
                let s = &spans[i];
                out.push_str(&"  ".repeat(depth));
                out.push_str(&one_line(s));
                out.push('\n');
                walk(spans, map, s.id, depth + 1, out);
            }
        }
    }
    walk(spans, &map, 0, 0, &mut out);
    out
}

/// Renders spans one per line, in id order (the `obs spans flat` format).
pub fn spans_to_flat(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&format!("parent={} {}\n", s.parent, one_line(s)));
    }
    out
}

/// Pipeline stages in thread-id order for the Chrome trace export; spans
/// of unknown kinds get tids after these.
const STAGES: [&str; 14] = [
    "event",
    "dispatch",
    "bind",
    "eval",
    "damage",
    "relayout",
    "redraw",
    "update",
    "send",
    "send.eval",
    "flush",
    "rasterize",
    "fault",
    "script",
];

fn stage_tid(kind: &str, extra: &mut Vec<String>) -> u64 {
    if let Some(i) = STAGES.iter().position(|s| *s == kind) {
        return i as u64 + 1;
    }
    if let Some(i) = extra.iter().position(|s| s == kind) {
        return STAGES.len() as u64 + 1 + i as u64;
    }
    extra.push(kind.to_string());
    STAGES.len() as u64 + extra.len() as u64
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Emits Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`)
/// for one or more applications: one pid per application, one tid per
/// pipeline stage, `X` complete events for spans, `i` instant events for
/// zero-width markers (damage, event enqueues, injected faults).
pub fn chrome_trace(apps: &[(String, Vec<SpanRecord>)]) -> String {
    let mut events = json::Array::new();
    for (pid0, (name, spans)) in apps.iter().enumerate() {
        let pid = pid0 as u64 + 1;
        let mut meta = json::Object::new();
        let mut args = json::Object::new();
        args.field_str("name", name);
        meta.field_str("ph", "M")
            .field_u64("pid", pid)
            .field_str("name", "process_name")
            .field_raw("args", &args.build());
        events.push_raw(&meta.build());

        let mut extra: Vec<String> = Vec::new();
        let mut named_tids: Vec<(u64, String)> = Vec::new();
        for s in spans {
            let tid = stage_tid(s.kind, &mut extra);
            if !named_tids.iter().any(|(t, _)| *t == tid) {
                named_tids.push((tid, s.kind.to_string()));
            }
            let mut args = json::Object::new();
            args.field_u64("id", s.id)
                .field_u64("parent", s.parent)
                .field_u64("seq", s.seq)
                .field_u64("epoch", s.epoch)
                .field_u64("vms", s.dur_vms())
                .field_str("detail", &s.detail);
            let mut ev = json::Object::new();
            if s.is_instant() {
                ev.field_str("ph", "i")
                    .field_str("s", "t")
                    .field_raw("ts", &micros(s.start_ns));
            } else {
                ev.field_str("ph", "X")
                    .field_raw("ts", &micros(s.start_ns))
                    .field_raw("dur", &micros(s.dur_ns()));
            }
            ev.field_u64("pid", pid)
                .field_u64("tid", tid)
                .field_str("name", s.kind)
                .field_str("cat", s.kind)
                .field_raw("args", &args.build());
            events.push_raw(&ev.build());
        }
        for (tid, kind) in named_tids {
            let mut args = json::Object::new();
            args.field_str("name", &kind);
            let mut meta = json::Object::new();
            meta.field_str("ph", "M")
                .field_u64("pid", pid)
                .field_u64("tid", tid)
                .field_str("name", "thread_name")
                .field_raw("args", &args.build());
            events.push_raw(&meta.build());
        }
    }
    let mut root = json::Object::new();
    root.field_raw("traceEvents", &events.build());
    root.field_str("displayTimeUnit", "ms");
    root.build()
}

/// Aggregates spans into folded stacks (`app;kind;kind value` lines, one
/// per unique stack) weighted by wall-clock *self* time — the input format
/// flamegraph tooling expects.
pub fn folded_stacks(apps: &[(String, Vec<SpanRecord>)]) -> String {
    aggregate_stacks(apps, |s| s.dur_ns(), false)
}

/// The virtual-clock profile: the same folded aggregation, but weighted by
/// simulated milliseconds of self time. Virtual durations are
/// deterministic, so this attribution reproduces exactly run to run.
pub fn virtual_profile(apps: &[(String, Vec<SpanRecord>)]) -> String {
    aggregate_stacks(apps, |s| s.dur_vms(), true)
}

fn aggregate_stacks(
    apps: &[(String, Vec<SpanRecord>)],
    weight: impl Fn(&SpanRecord) -> u64,
    keep_zero_roots: bool,
) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (name, spans) in apps {
        let index: BTreeMap<SpanId, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        // Sum each span's children so self time = total - children.
        let mut child_sum: BTreeMap<SpanId, u64> = BTreeMap::new();
        for s in spans {
            if s.parent != 0 && index.contains_key(&s.parent) {
                *child_sum.entry(s.parent).or_insert(0) += weight(s);
            }
        }
        for s in spans {
            if s.is_instant() {
                continue;
            }
            let total = weight(s);
            let self_w = total.saturating_sub(child_sum.get(&s.id).copied().unwrap_or(0));
            if self_w == 0 && !(keep_zero_roots && s.parent == 0) {
                continue;
            }
            // Build the stack path root→self.
            let mut path: Vec<&str> = vec![s.kind];
            let mut cur = s.parent;
            let mut hops = 0;
            while cur != 0 && hops < 64 {
                let Some(&i) = index.get(&cur) else { break };
                path.push(spans[i].kind);
                cur = spans[i].parent;
                hops += 1;
            }
            path.push(name.as_str());
            path.reverse();
            *agg.entry(path.join(";")).or_insert(0) += self_w;
        }
    }
    let mut out = String::new();
    for (stack, w) in agg {
        out.push_str(&format!("{stack} {w}\n"));
    }
    out
}

/// Per-stage rollup of a span set: `(kind, count, total wall ns, total
/// virtual ms)`, sorted by kind — the `--stats` per-stage breakdown.
/// Instants count but contribute no time.
pub fn stage_totals(spans: &[SpanRecord]) -> Vec<(String, u64, u64, u64)> {
    let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg.entry(s.kind).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_ns();
        e.2 += s.dur_vms();
    }
    agg.into_iter()
        .map(|(k, (n, ns, vms))| (k.to_string(), n, ns, vms))
        .collect()
}

/// The deterministic *shape* of a span tree: counts by kind, parent→child
/// edge counts, and the orphan/open tallies — what CI pins in
/// `BUDGETS.json`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanShape {
    /// Span count per kind.
    pub by_kind: BTreeMap<String, u64>,
    /// Edge count per `"parent>child"` kind pair (`"root>kind"` for
    /// epoch-root spans).
    pub edges: BTreeMap<String, u64>,
    /// Spans whose parent id is missing from the store (must be 0).
    pub orphans: u64,
    /// Spans still open at collection time (must be 0 at quiescence).
    pub open: u64,
}

impl SpanShape {
    /// Computes the shape of a span set (one application), or folds
    /// additional spans into an existing shape to aggregate applications.
    pub fn collect(&mut self, spans: &[SpanRecord]) {
        let ids: BTreeMap<SpanId, &str> = spans.iter().map(|s| (s.id, s.kind)).collect();
        for s in spans {
            *self.by_kind.entry(s.kind.to_string()).or_insert(0) += 1;
            let parent_kind = if s.parent == 0 {
                "root"
            } else if let Some(k) = ids.get(&s.parent) {
                k
            } else {
                self.orphans += 1;
                "orphan"
            };
            *self
                .edges
                .entry(format!("{parent_kind}>{}", s.kind))
                .or_insert(0) += 1;
            if s.open {
                self.open += 1;
            }
        }
    }

    /// Serializes the shape for `BUDGETS.json`.
    pub fn to_json(&self) -> String {
        let mut kinds = json::Object::new();
        for (k, v) in &self.by_kind {
            kinds.field_u64(k, *v);
        }
        let mut edges = json::Object::new();
        for (k, v) in &self.edges {
            edges.field_u64(k, *v);
        }
        let mut o = json::Object::new();
        o.field_raw("by_kind", &kinds.build())
            .field_raw("edges", &edges.build())
            .field_u64("orphans", self.orphans)
            .field_u64("open", self.open);
        o.build()
    }

    /// Rebuilds a shape from parsed `BUDGETS.json` data.
    pub fn from_value(v: &json::Value) -> Option<SpanShape> {
        let mut shape = SpanShape::default();
        for (key, map) in [("by_kind", &mut shape.by_kind), ("edges", &mut shape.edges)] {
            for (k, n) in v.get(key)?.as_object()? {
                map.insert(k.clone(), n.as_u64()?);
            }
        }
        shape.orphans = v.get("orphans")?.as_u64()?;
        shape.open = v.get("open")?.as_u64()?;
        Some(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        Tracer::new(Instant::now())
    }

    #[test]
    fn spans_nest_on_the_stack() {
        let t = tracer();
        {
            let a = t.begin("dispatch", "ev", 1);
            assert_eq!(t.current(), a.id());
            {
                let b = t.begin("bind", "script", 0);
                assert_eq!(t.current(), b.id());
                t.instant("damage", ".b", 0);
            }
            assert_eq!(t.current(), a.id());
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[2].parent, spans[1].id);
        assert!(spans[2].is_instant());
        assert_eq!(t.open_count(), 0);
        t.check_integrity().unwrap();
    }

    #[test]
    fn explicit_cause_parents_deferred_work() {
        let t = tracer();
        let cause = {
            let d = t.begin("dispatch", "", 0);
            d.id()
        };
        // Later, outside the dispatch span: re-enter the cause.
        {
            let _scope = t.scope(cause);
            let _r = t.begin("redraw", ".b", 0);
        }
        let spans = t.snapshot();
        assert_eq!(spans[1].kind, "redraw");
        assert_eq!(spans[1].parent, cause);
        t.check_integrity().unwrap();
    }

    #[test]
    fn store_is_bounded_and_never_orphans() {
        let t = tracer();
        t.set_cap(16);
        let _outer = t.begin("dispatch", "", 0);
        for _ in 0..40 {
            t.instant("damage", "", 0);
        }
        assert_eq!(t.len(), 16);
        assert!(t.dropped() > 0);
        // A span begun while full is dropped; its children re-attach to
        // the recorded ancestor.
        let g = t.begin("bind", "", 0);
        assert_eq!(g.id(), 0);
        drop(g);
        drop(_outer);
        t.check_integrity().unwrap();
    }

    #[test]
    fn reset_epoch_reparents_open_spans() {
        let t = tracer();
        let outer = t.begin("dispatch", "", 0);
        let inner = t.begin("bind", "", 0);
        t.instant("damage", "", 0);
        assert_eq!(t.len(), 3);
        t.reset_epoch();
        // Both open spans survive into the new epoch; the instant is gone.
        assert_eq!(t.len(), 2);
        assert_eq!(t.epoch(), 1);
        let spans = t.snapshot();
        assert_eq!(spans[0].parent, 0, "outer re-parents to the epoch root");
        assert_eq!(spans[1].parent, spans[0].id, "nesting among survivors kept");
        assert!(spans.iter().all(|s| s.epoch == 1));
        // The guards still close their spans after the reset.
        drop(inner);
        drop(outer);
        assert_eq!(t.open_count(), 0);
        t.check_integrity().unwrap();
        // New spans parent under the surviving context correctly.
        let _g = t.begin("eval", "", 0);
        assert_eq!(t.snapshot()[2].parent, 0);
    }

    #[test]
    fn virtual_clock_is_recorded() {
        let t = tracer();
        let clock = VirtualClock::new();
        clock.set(100);
        t.set_virtual_clock(clock.clone());
        let g = t.begin("send", "", 7);
        clock.set(250);
        drop(g);
        let s = &t.snapshot()[0];
        assert_eq!((s.start_vms, s.end_vms), (100, 250));
        assert_eq!(s.dur_vms(), 150);
        assert_eq!(s.seq, 7);
    }

    #[test]
    fn exports_are_valid_and_complete() {
        let t = tracer();
        t.set_client(3);
        {
            let _d = t.begin("dispatch", "ButtonPress", 5);
            let _b = t.begin("bind", "<ButtonPress-1>", 0);
            t.instant("fault", "drop", 9);
        }
        let spans = t.snapshot();
        let j = spans_to_json(&spans);
        assert!(json::is_valid(&j), "{j}");
        assert!(j.contains("\"kind\":\"bind\""));
        let tree = spans_to_tree(&spans);
        assert!(tree.contains("dispatch"), "{tree}");
        assert!(tree.contains("  bind"), "nested indent missing: {tree}");
        let flat = spans_to_flat(&spans);
        assert_eq!(flat.lines().count(), 3);

        let apps = vec![("app".to_string(), spans)];
        let chrome = chrome_trace(&apps);
        assert!(json::is_valid(&chrome), "{chrome}");
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""), "fault instant missing");
        assert!(chrome.contains("\"process_name\""));
        assert!(chrome.contains("\"thread_name\""));
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let t = tracer();
        {
            let _a = t.begin("dispatch", "", 0);
            let _b = t.begin("bind", "", 0);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let folded = folded_stacks(&[("app".to_string(), t.snapshot())]);
        assert!(folded.contains("app;dispatch;bind "), "{folded}");
    }

    #[test]
    fn virtual_profile_is_deterministic() {
        let make = || {
            let t = tracer();
            let clock = VirtualClock::new();
            t.set_virtual_clock(clock.clone());
            let g = t.begin("send", "", 1);
            clock.set(200);
            drop(g);
            virtual_profile(&[("app".to_string(), t.snapshot())])
        };
        let p = make();
        assert_eq!(p, make());
        assert!(p.contains("app;send 200"), "{p}");
    }

    #[test]
    fn shape_round_trips_through_json() {
        let t = tracer();
        {
            let _d = t.begin("dispatch", "", 0);
            t.instant("damage", "", 0);
        }
        let mut shape = SpanShape::default();
        shape.collect(&t.snapshot());
        assert_eq!(shape.by_kind["dispatch"], 1);
        assert_eq!(shape.edges["dispatch>damage"], 1);
        assert_eq!(shape.edges["root>dispatch"], 1);
        assert_eq!(shape.orphans, 0);
        assert_eq!(shape.open, 0);
        let j = shape.to_json();
        assert!(json::is_valid(&j), "{j}");
        let parsed = SpanShape::from_value(&json::parse(&j).unwrap()).unwrap();
        assert_eq!(parsed, shape);
    }
}
