//! `wish` — the windowing shell (Section 5).
//!
//! "I have built a simple windowing shell called wish, which consists of
//! Tcl, Tk, and a main program that reads Tcl commands from standard input
//! or from a file." Scripts start with `#!wish -f` (Figure 9); because the
//! display is simulated, `wish` also provides commands to drive input and
//! inspect the screen:
//!
//! * `screendump ?file?` — ASCII rendering of the screen (or PPM to file);
//! * `pointer x y`, `click ?button?`, `type string`, `key name` — input;
//! * `mainloop` — process events until every window is destroyed.
//!
//! Usage: `wish [-f script] [-name appname] [--stats] [--wire|--no-wire]
//! [command...]`
//!
//! With `--stats`, wish prints the full observability dump
//! (`obs dump -format json`) to standard error at exit, followed by a
//! human-readable per-stage breakdown of the causal span tracer (span
//! count, wall time, and virtual time per pipeline stage).
//!
//! The display speaks the framed wire transport by default (a server
//! thread owns the semantics; see docs/PROTOCOL.md). `--no-wire` — or
//! the `RTK_NO_WIRE=1` environment variable — selects the in-process
//! oracle transport instead; `--wire` forces the framed transport even
//! when the environment says otherwise. With `--stats`, the dump's
//! `wire` block reports the frames, bytes, and flushes that actually
//! crossed the transport (absent on the oracle path).

use std::io::{BufRead, IsTerminal, Write};

use tk::TkEnv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut script_file: Option<String> = None;
    let mut name = "wish".to_string();
    let mut stats = false;
    let mut wire: Option<bool> = None;
    let mut script_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-f" | "-file" => {
                i += 1;
                script_file = args.get(i).cloned();
            }
            "-name" => {
                i += 1;
                if let Some(n) = args.get(i) {
                    name = n.clone();
                }
            }
            "--stats" | "-stats" => {
                stats = true;
            }
            "--wire" | "-wire" => {
                wire = Some(true);
            }
            "--no-wire" | "-no-wire" => {
                wire = Some(false);
            }
            "-h" | "--help" => {
                println!(
                    "usage: wish [-f script] [-name appname] [--stats] \
                     [--wire|--no-wire] [arg ...]"
                );
                return;
            }
            other => {
                if script_file.is_none() && !other.starts_with('-') {
                    script_file = Some(other.to_string());
                } else {
                    script_args.push(other.to_string());
                }
            }
        }
        i += 1;
    }

    // The flags beat the environment: `--wire` forces the framed
    // transport under RTK_NO_WIRE=1, `--no-wire` forces the in-process
    // oracle. With neither, Display::new() reads RTK_NO_WIRE itself.
    let env = match wire {
        None => TkEnv::new(),
        Some(on) => {
            let display = xsim::Display::new();
            display.set_wire(on);
            TkEnv::with_display(display)
        }
    };
    let app = env.app(&name);
    install_shell_commands(&env, &app);

    // Expose argv/argc like wish does.
    let interp = app.interp();
    interp
        .set_var_at(0, "argv", None, &tcl::format_list(&script_args))
        .expect("set argv");
    interp
        .set_var_at(0, "argc", None, &script_args.len().to_string())
        .expect("set argc");

    if let Some(file) = script_file {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("wish: couldn't read \"{file}\": {e}");
                std::process::exit(1);
            }
        };
        match app.eval(&text) {
            Ok(_) => {}
            Err(e) => {
                if let Some(status) = app.interp().exit_requested() {
                    app.update();
                    print_stats(stats, &app);
                    std::process::exit(status);
                }
                eprintln!("wish: {}", e.error_info());
                print_stats(stats, &app);
                std::process::exit(1);
            }
        }
        app.update();
        print_stats(stats, &app);
        std::process::exit(app.interp().exit_requested().unwrap_or(0));
    }

    // Interactive: a read-eval-print loop over standard input.
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        buffer.push_str(&line);
        buffer.push('\n');
        // Incomplete commands (open braces) accumulate, like real wish.
        if !command_complete(&buffer) {
            print_prompt(&buffer);
            continue;
        }
        let script = std::mem::take(&mut buffer);
        match app.eval(&script) {
            Ok(result) => {
                if !result.is_empty() {
                    println!("{result}");
                }
            }
            Err(e) => {
                if app.interp().exit_requested().is_some() {
                    break;
                }
                println!("Error: {}", e.msg);
            }
        }
        app.update();
        if app.destroyed() {
            break;
        }
        print_prompt(&buffer);
    }
    print_stats(stats, &app);
    std::process::exit(app.interp().exit_requested().unwrap_or(0));
}

/// `--stats`: the exit-time observability dump, on standard error so it
/// never mixes with script output. The JSON dump is followed by the
/// per-stage span breakdown — where the run's wall and virtual time went,
/// stage by pipeline stage.
fn print_stats(enabled: bool, app: &tk::TkApp) {
    if !enabled {
        return;
    }
    eprintln!("{}", tk::obs_cmd::dump_json(app));
    let spans = app.tracer().snapshot();
    let totals = rtk_obs::span::stage_totals(&spans);
    if totals.is_empty() {
        return;
    }
    eprintln!("per-stage span breakdown ({} spans):", spans.len());
    eprintln!(
        "  {:<12} {:>8} {:>12} {:>10}",
        "stage", "count", "wall_us", "virtual_ms"
    );
    for (kind, count, ns, vms) in totals {
        eprintln!("  {kind:<12} {count:>8} {:>12} {vms:>10}", ns / 1_000);
    }
}

fn print_prompt(buffer: &str) {
    // Piped input (e.g. `echo '...' | wish`) gets no prompts, so script
    // output stays machine-readable.
    if !std::io::stdin().is_terminal() {
        return;
    }
    let prompt = if buffer.is_empty() { "% " } else { "> " };
    print!("{prompt}");
    let _ = std::io::stdout().flush();
}

/// Is the accumulated input a complete command (braces/brackets/quotes
/// balanced)? Uses the real parser: an unbalanced error means "keep going".
fn command_complete(script: &str) -> bool {
    let mut pos = 0;
    loop {
        match tcl::parser::parse_command(script, &mut pos) {
            Ok(Some(_)) => continue,
            Ok(None) => return true,
            Err(e) => {
                return !(e.msg.contains("missing close-brace")
                    || e.msg.contains("missing close-bracket")
                    || e.msg.contains("missing \""));
            }
        }
    }
}

/// Simulation-specific commands that stand in for the physical user.
fn install_shell_commands(env: &TkEnv, app: &tk::TkApp) {
    let e = env.clone();
    app.interp()
        .register("screendump", move |_i, argv| match argv.get(1) {
            Some(path) if path.ends_with(".ppm") => {
                let shot = e.display().screenshot();
                std::fs::write(path, shot.to_ppm())
                    .map_err(|err| tcl::Exception::error(format!("can't write {path}: {err}")))?;
                Ok(String::new())
            }
            Some(path) => {
                std::fs::write(path, e.display().ascii_dump())
                    .map_err(|err| tcl::Exception::error(format!("can't write {path}: {err}")))?;
                Ok(String::new())
            }
            None => Ok(e.display().ascii_dump()),
        });
    let e = env.clone();
    app.interp().register("pointer", move |_i, argv| {
        if argv.len() != 3 {
            return Err(tcl::wrong_args("pointer x y"));
        }
        let x: i32 = argv[1]
            .parse()
            .map_err(|_| tcl::Exception::error("expected integer"))?;
        let y: i32 = argv[2]
            .parse()
            .map_err(|_| tcl::Exception::error("expected integer"))?;
        e.display().move_pointer(x, y);
        e.dispatch_all();
        Ok(String::new())
    });
    let e = env.clone();
    app.interp().register("click", move |_i, argv| {
        let button: u8 = argv.get(1).map(|b| b.parse().unwrap_or(1)).unwrap_or(1);
        e.display().click(button);
        e.dispatch_all();
        Ok(String::new())
    });
    let e = env.clone();
    app.interp().register("type", move |_i, argv| {
        if argv.len() != 2 {
            return Err(tcl::wrong_args("type string"));
        }
        e.display().type_string(&argv[1]);
        e.dispatch_all();
        Ok(String::new())
    });
    let e = env.clone();
    app.interp().register("key", move |_i, argv| {
        if argv.len() != 2 {
            return Err(tcl::wrong_args("key name"));
        }
        e.display().press_key(&argv[1]);
        e.dispatch_all();
        Ok(String::new())
    });
    let e = env.clone();
    let a = app.clone();
    app.interp().register("mainloop", move |_i, _argv| {
        // With a simulated display there is no external event source;
        // drain whatever is pending, fire due timers, and return when the
        // application is destroyed or idle.
        for _ in 0..100_000 {
            e.dispatch_all();
            if a.destroyed() {
                break;
            }
            // Let time pass so `after` scripts run.
            e.advance(10);
            if !e.dispatch_all() {
                break;
            }
        }
        Ok(String::new())
    });
}
