//! # rtk — a Rust reproduction of Tk, the Tcl-based X11 toolkit
//!
//! The facade crate of the workspace: re-exports the three layers so that
//! examples and integration tests (and downstream users who want the
//! whole stack) need a single dependency.
//!
//! * [`tcl`] — the embeddable Tool Command Language interpreter;
//! * [`xsim`] — the simulated X11 server substrate;
//! * [`tk`] — the toolkit: intrinsics, widgets, and `send`.
//!
//! See the repository README for the architecture and DESIGN.md for the
//! paper-to-implementation mapping.
//!
//! # Examples
//!
//! ```
//! use rtk::tk::TkEnv;
//!
//! let env = TkEnv::new();
//! let app = env.app("demo");
//! app.eval("button .b -text Hello -command {print hi}").unwrap();
//! app.eval("pack append . .b {top}").unwrap();
//! app.update();
//! assert_eq!(app.eval("winfo class .b").unwrap(), "Button");
//! ```

pub use tcl;
pub use tk;
pub use xsim;
